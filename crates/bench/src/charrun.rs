//! `reproduce characterize` / `reproduce refute`: run the directed-probe
//! grid on the shard pool.
//!
//! The grid is one job per probeable opcode × addressing-mode cell. The
//! baseline scaffold is measured **once, on the main thread** before the
//! fan-out — every cell's attribution subtracts the same baseline, and a
//! worker sends back only the compact [`CostRecord`] (never the 256 KB
//! histogram), so memory stays flat across a ~2000-cell grid. Results
//! land in input-indexed slots and are reduced in grid order, so
//! `costs.json` is byte-identical at any `--jobs` count, exactly like the
//! composite run.
//!
//! Observability mirrors `runner::run_grid`: a `run` span on the main
//! track with `baseline` under it, one `probe` (+`attribute`/`refute`)
//! span per cell on the worker tracks, `minimize` spans on the main track
//! for the shrink search, and the heartbeat counters (`cells_total`,
//! `cells_done`, `instructions`) the `--progress` feed reads.

use std::path::PathBuf;

use vax_analysis::characterize::{
    attribute, costs_from_json, run_probe, select_grid, CostRecord, CostTable, ProbeRun,
};
use vax_analysis::refute::{check_cell, minimize, refutation_json, Refutation, RefuteTolerance};
use vax_arch::{AddressingMode, Opcode};
use vax_asm::probe::{mode_key, probe_grid, ProbeTarget};
use vax_trace::{worker_tid, Tracer, MAIN_TID};

use crate::cli::CharacterizeOptions;
use crate::fsio::write_atomic;
use crate::pool::{panic_message, run_supervised_cancelable};
use crate::progress::Progress;

/// Everything `reproduce characterize` produces.
#[derive(Debug)]
pub struct CharacterizeOutput {
    /// The attributed cost table (records in grid order).
    pub table: CostTable,
    /// Cells whose probe exhausted its retries, as `(mnemonic, mode key)`.
    pub failed_cells: Vec<(String, String)>,
}

/// Everything `reproduce refute` produces.
#[derive(Debug)]
pub struct RefuteOutput {
    /// Probeable cells checked.
    pub cells_checked: usize,
    /// Cells with at least one failing cross-check, as
    /// `(mnemonic, mode key, failing check names)`, grid order.
    pub refuted_cells: Vec<(String, String, Vec<String>)>,
    /// Minimized refutations (at most `--max-refutations`), with the
    /// fixture path each was written to (when a fixtures dir was set).
    pub refutations: Vec<(Refutation, Option<PathBuf>)>,
    /// Cells whose probe exhausted its retries.
    pub failed_cells: Vec<(String, String)>,
}

/// Resolve the CLI's string filters (already validated by the parser;
/// anything unresolvable here is simply dropped).
fn filters(opts: &CharacterizeOptions) -> (Vec<Opcode>, Vec<AddressingMode>) {
    let opcodes = opts
        .opcodes
        .iter()
        .filter_map(|m| Opcode::from_mnemonic(m))
        .collect();
    let modes = opts
        .modes
        .iter()
        .filter_map(|k| vax_asm::probe::mode_from_key(k))
        .collect();
    (opcodes, modes)
}

/// `reproduce characterize --list`: the filtered opcode × mode grid with
/// a probe/skip verdict per cell. Pure rendering — no simulation.
pub fn render_grid_list(opts: &CharacterizeOptions) -> String {
    let (opcodes, modes) = filters(opts);
    let mut out = String::from("opcode   mode                   cell\n");
    let mut probeable = 0usize;
    let mut skipped = 0usize;
    for cell in probe_grid() {
        if !opcodes.is_empty() && !opcodes.contains(&cell.opcode) {
            continue;
        }
        if !modes.is_empty() && !modes.contains(&cell.mode) {
            continue;
        }
        let verdict = match cell.target {
            Ok(t) => {
                probeable += 1;
                format!("probe (operand {})", t.operand)
            }
            Err(r) => {
                skipped += 1;
                format!("skip: {r}")
            }
        };
        out.push_str(&format!(
            "{:<8} {:<22} {verdict}\n",
            cell.opcode.mnemonic(),
            mode_key(cell.mode),
        ));
    }
    out.push_str(&format!(
        "{} cell(s): {probeable} probeable, {skipped} skipped\n",
        probeable + skipped
    ));
    out
}

/// Measure the shared baseline scaffold under its own span on the main
/// track.
fn run_baseline(opts: &CharacterizeOptions, tracer: &Tracer) -> ProbeRun {
    let _g = tracer.span(MAIN_TID, "baseline", vec![]);
    let b = run_probe(None, 0, opts.iters, opts.warmup)
        .expect("baseline scaffold must always assemble");
    tracer.count(MAIN_TID, "instructions", b.m.instructions());
    tracer.count(MAIN_TID, "sim_cycles", b.m.cycles);
    b
}

/// Run one probe cell on a worker track and return its run.
fn probe_cell(
    target: &ProbeTarget,
    opts: &CharacterizeOptions,
    tracer: &Tracer,
    tid: u64,
    attempt: u32,
) -> ProbeRun {
    let _g = tracer.span(
        tid,
        "probe",
        vec![
            ("opcode", target.opcode.mnemonic().into()),
            ("mode", mode_key(target.mode).into()),
            ("attempt", attempt.into()),
        ],
    );
    run_probe(Some(target), opts.reps, opts.iters, opts.warmup)
        .expect("grid targets always assemble")
}

/// Record the per-cell counters after a successful measurement (retried
/// attempts therefore never double-count, as in the composite run).
fn count_cell(tracer: &Tracer, tid: u64, run: &ProbeRun) {
    if tracer.is_enabled() {
        tracer.count(tid, "instructions", run.m.instructions());
        tracer.count(tid, "sim_cycles", run.m.cycles);
        tracer.count(tid, "probes_done", 1);
    }
    tracer.count(tid, "cells_done", 1);
}

/// Run the characterization grid described by `opts`.
///
/// # Panics
/// Panics if `opts.jobs == 0` (the CLI rejects it up front). A worker
/// panic is retried and, on exhaustion, quarantined into
/// [`CharacterizeOutput::failed_cells`].
pub fn run_characterize(
    opts: &CharacterizeOptions,
    progress: &Progress,
    tracer: &Tracer,
) -> CharacterizeOutput {
    let (opcodes, modes) = filters(opts);
    let (targets, skips) = select_grid(&opcodes, &modes);
    tracer.set_thread_name(MAIN_TID, "main");
    let run_span = tracer.span(
        MAIN_TID,
        "run",
        vec![
            ("experiment", "characterize".into()),
            ("cells", (targets.len() as u64).into()),
            ("reps", opts.reps.into()),
            ("iters", opts.iters.into()),
            ("jobs", (opts.jobs as u64).into()),
        ],
    );
    tracer.counter_set("cells_total", targets.len() as u64);
    progress.info(&format!(
        "characterizing {} cell(s) ({} skipped) x {} rep(s) x {} iteration(s), {} job(s) ...",
        targets.len(),
        skips.len(),
        opts.reps,
        opts.iters,
        opts.jobs
    ));

    let baseline = run_baseline(opts, tracer);
    let baseline_cpi = baseline.m.cycles as f64 / baseline.m.instructions().max(1) as f64;

    let outcome = run_supervised_cancelable(
        opts.jobs,
        &targets,
        opts.retries,
        tracer,
        run_span.id(),
        &opts.cancel,
        |worker, _i, target: &ProbeTarget, attempt| {
            let tid = worker_tid(worker);
            let run = probe_cell(target, opts, tracer, tid, attempt);
            let record = {
                let _g = tracer.span(tid, "attribute", vec![]);
                attribute(target, &run, &baseline)
            };
            count_cell(tracer, tid, &run);
            progress.debug(&format!(
                "  {} {}: {:.2} cycles",
                target.opcode.mnemonic(),
                mode_key(target.mode),
                record.cycles
            ));
            record
        },
    );

    if let Some(kind) = opts.cancel.fired() {
        tracer.instant(MAIN_TID, "cancel", vec![("kind", kind.name().into())]);
        tracer.count(MAIN_TID, "jobs_canceled", 1);
        progress.info(&format!("characterize {} at a cell boundary", kind.name()));
    }

    let mut failed_cells = Vec::new();
    for f in &outcome.failures {
        let t = &targets[f.index];
        progress.warn(&format!(
            "{} {} quarantined after {} attempt(s): {}",
            t.opcode.mnemonic(),
            mode_key(t.mode),
            f.attempts,
            panic_message(&f.payload)
        ));
        failed_cells.push((
            t.opcode.mnemonic().to_string(),
            mode_key(t.mode).to_string(),
        ));
    }
    // Grid-order reduction: slots are input-indexed, so the table never
    // depends on worker completion order.
    let records: Vec<CostRecord> = outcome.slots.into_iter().flatten().collect();
    drop(run_span);

    CharacterizeOutput {
        table: CostTable {
            reps: opts.reps,
            iters: opts.iters,
            warmup: opts.warmup,
            baseline_cpi,
            baseline_loop_bytes: baseline.probe.loop_bytes,
            records,
            skips,
        },
        failed_cells,
    }
}

/// Run the adversarial cross-check grid described by `opts`.
///
/// # Errors
/// Returns a message when `--model` is set but unreadable or unparseable.
pub fn run_refute(
    opts: &CharacterizeOptions,
    progress: &Progress,
    tracer: &Tracer,
) -> Result<RefuteOutput, String> {
    let model = match &opts.model {
        None => None,
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read model {}: {e}", path.display()))?;
            Some(costs_from_json(&text).map_err(|e| format!("model {}: {e}", path.display()))?)
        }
    };
    let tol = RefuteTolerance {
        abs: opts.abs_tol,
        rel: opts.rel_tol,
    };
    let model_ref = model.as_ref().map(|t| (t, tol));

    let (opcodes, modes) = filters(opts);
    let (targets, _skips) = select_grid(&opcodes, &modes);
    tracer.set_thread_name(MAIN_TID, "main");
    let run_span = tracer.span(
        MAIN_TID,
        "run",
        vec![
            ("experiment", "refute".into()),
            ("cells", (targets.len() as u64).into()),
            ("reps", opts.reps.into()),
            ("iters", opts.iters.into()),
            ("jobs", (opts.jobs as u64).into()),
        ],
    );
    tracer.counter_set("cells_total", targets.len() as u64);
    progress.info(&format!(
        "refuting over {} cell(s) x {} rep(s) x {} iteration(s), {} job(s){} ...",
        targets.len(),
        opts.reps,
        opts.iters,
        opts.jobs,
        if model.is_some() {
            " against cost model"
        } else {
            ""
        }
    ));

    let baseline = run_baseline(opts, tracer);

    let outcome = run_supervised_cancelable(
        opts.jobs,
        &targets,
        opts.retries,
        tracer,
        run_span.id(),
        &opts.cancel,
        |worker, _i, target: &ProbeTarget, attempt| {
            let tid = worker_tid(worker);
            let run = probe_cell(target, opts, tracer, tid, attempt);
            let failures = {
                let _g = tracer.span(tid, "refute", vec![]);
                check_cell(target, &run, &baseline, model_ref)
            };
            count_cell(tracer, tid, &run);
            if !failures.is_empty() {
                tracer.instant(
                    tid,
                    "refuted",
                    vec![
                        ("opcode", target.opcode.mnemonic().into()),
                        ("mode", mode_key(target.mode).into()),
                    ],
                );
            }
            failures
        },
    );

    if let Some(kind) = opts.cancel.fired() {
        tracer.instant(MAIN_TID, "cancel", vec![("kind", kind.name().into())]);
        tracer.count(MAIN_TID, "jobs_canceled", 1);
        progress.info(&format!("refute {} at a cell boundary", kind.name()));
    }

    let mut failed_cells = Vec::new();
    for f in &outcome.failures {
        let t = &targets[f.index];
        progress.warn(&format!(
            "{} {} quarantined after {} attempt(s): {}",
            t.opcode.mnemonic(),
            mode_key(t.mode),
            f.attempts,
            panic_message(&f.payload)
        ));
        failed_cells.push((
            t.opcode.mnemonic().to_string(),
            mode_key(t.mode).to_string(),
        ));
    }

    // Grid-order pass over the verdicts: collect every refuted cell, then
    // minimize (serially, on the main track — the shrink search re-runs
    // probes and must stay deterministic) up to the configured cap.
    let mut refuted_cells: Vec<(String, String, Vec<String>)> = Vec::new();
    let mut to_minimize: Vec<(ProbeTarget, Vec<_>)> = Vec::new();
    for (target, slot) in targets.iter().zip(outcome.slots) {
        let Some(failures) = slot else { continue };
        if failures.is_empty() {
            continue;
        }
        tracer.count(MAIN_TID, "refutations", 1);
        let names: Vec<String> = failures.iter().map(|c| c.name.clone()).collect();
        progress.warn(&format!(
            "REFUTED {} {}: {}",
            target.opcode.mnemonic(),
            mode_key(target.mode),
            names.join(", ")
        ));
        refuted_cells.push((
            target.opcode.mnemonic().to_string(),
            mode_key(target.mode).to_string(),
            names,
        ));
        if to_minimize.len() < opts.max_refutations {
            to_minimize.push((*target, failures));
        }
    }

    // A fired token also skips minimization: the shrink search re-runs
    // probes serially and would push a deadline-exceeded job well past
    // its budget.
    if opts.cancel.fired().is_some() {
        to_minimize.clear();
    }
    let mut refutations = Vec::new();
    for (target, failures) in to_minimize {
        let minimized = {
            let _g = tracer.span(
                MAIN_TID,
                "minimize",
                vec![
                    ("opcode", target.opcode.mnemonic().into()),
                    ("mode", mode_key(target.mode).into()),
                ],
            );
            minimize(
                &target,
                opts.reps,
                opts.iters,
                opts.warmup,
                &baseline,
                model_ref,
                failures,
            )
            .expect("minimization candidates always assemble")
        };
        progress.info(&format!(
            "minimized {} {} (reps {}) from {} (reps {})",
            minimized.opcode.mnemonic(),
            mode_key(minimized.mode),
            minimized.reps,
            mode_key(minimized.found_at.0),
            minimized.found_at.1,
        ));
        let path = opts.fixtures.as_ref().map(|dir| {
            let path = dir.join(format!(
                "refute-{}-{}.json",
                minimized.opcode.mnemonic().to_lowercase(),
                mode_key(minimized.mode)
            ));
            if let Err(e) = std::fs::create_dir_all(dir)
                .map_err(|e| e.to_string())
                .and_then(|()| {
                    write_atomic(&path, &refutation_json(&minimized)).map_err(|e| e.to_string())
                })
            {
                progress.warn(&format!("fixture {} not written: {e}", path.display()));
            } else {
                progress.info(&format!("wrote {}", path.display()));
            }
            path
        });
        refutations.push((minimized, path));
    }
    drop(run_span);

    Ok(RefuteOutput {
        cells_checked: targets.len(),
        refuted_cells,
        refutations,
        failed_cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::Verbosity;

    fn small_opts() -> CharacterizeOptions {
        CharacterizeOptions {
            opcodes: vec!["MOVL".into(), "CLRL".into()],
            modes: vec![
                "register".into(),
                "literal".into(),
                "register_deferred".into(),
            ],
            reps: 2,
            iters: 8,
            warmup: 1500,
            verbosity: Verbosity::Quiet,
            ..CharacterizeOptions::default()
        }
    }

    #[test]
    fn list_render_marks_probes_and_skips() {
        let s = render_grid_list(&small_opts());
        // MOVL probes all three modes; CLRL skips literal (write-only).
        assert!(s.contains("MOVL"), "{s}");
        assert!(s.contains("probe (operand 0)"), "{s}");
        assert!(s.contains("skip: literal/immediate is read-only"), "{s}");
        assert!(s.contains("5 probeable, 1 skipped"), "{s}");
    }

    #[test]
    fn characterize_grid_is_jobs_invariant() {
        let progress = Progress::new(Verbosity::Quiet);
        let mut o1 = small_opts();
        o1.jobs = 1;
        let mut o4 = small_opts();
        o4.jobs = 4;
        let t1 = run_characterize(&o1, &progress, &Tracer::disabled());
        let t4 = run_characterize(&o4, &progress, &Tracer::disabled());
        assert!(t1.failed_cells.is_empty() && t4.failed_cells.is_empty());
        assert_eq!(t1.table, t4.table, "cost table must not depend on --jobs");
        assert_eq!(t1.table.records.len(), 5);
    }

    #[test]
    fn refute_clean_grid_and_seeded_mutation() {
        let progress = Progress::new(Verbosity::Quiet);
        let opts = small_opts();
        let ch = run_characterize(&opts, &progress, &Tracer::disabled());

        // Refuting against the model we just measured is clean.
        let dir = std::env::temp_dir().join(format!("vax-refute-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("costs.json");
        std::fs::write(
            &model_path,
            vax_analysis::characterize::costs_json(&ch.table),
        )
        .unwrap();
        let mut ropts = opts.clone();
        ropts.model = Some(model_path.clone());
        ropts.fixtures = Some(dir.join("fixtures"));
        let out = run_refute(&ropts, &progress, &Tracer::disabled()).unwrap();
        assert_eq!(out.cells_checked, 5);
        assert!(out.refuted_cells.is_empty(), "{:?}", out.refuted_cells);

        // Mutate one record: that cell (and only that cell) is refuted,
        // minimized, and written as a fixture.
        let mut mutated = ch.table.clone();
        mutated.records[0].cycles += 4.0;
        std::fs::write(
            &model_path,
            vax_analysis::characterize::costs_json(&mutated),
        )
        .unwrap();
        let out = run_refute(&ropts, &progress, &Tracer::disabled()).unwrap();
        assert_eq!(out.refuted_cells.len(), 1);
        assert_eq!(out.refutations.len(), 1);
        let (r, path) = &out.refutations[0];
        assert_eq!(r.opcode, mutated.records[0].opcode);
        assert_eq!(r.reps, 1, "shrunk to a single probe copy");
        assert!(path.as_ref().unwrap().exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
