//! Leveled progress narration for the harness.
//!
//! Everything here writes to **stderr**: with `--format json` the stdout
//! stream is a machine-readable artifact and must stay clean, so narration
//! and results never share a stream. Three levels:
//!
//! * `--quiet` — warnings only;
//! * default — warnings plus progress milestones;
//! * `--verbose` — all of the above plus per-step detail.

/// Narration verbosity, parsed from `--quiet` / `--verbose`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verbosity {
    /// Warnings only.
    Quiet,
    /// Warnings and progress milestones (the default).
    #[default]
    Normal,
    /// Everything, including per-step detail.
    Verbose,
}

/// A leveled stderr logger.
#[derive(Debug, Clone, Copy)]
pub struct Progress {
    level: Verbosity,
}

impl Progress {
    /// A logger at the given level.
    pub fn new(level: Verbosity) -> Progress {
        Progress { level }
    }

    /// Always printed, prefixed `warning:`.
    pub fn warn(&self, msg: &str) {
        eprintln!("reproduce: warning: {msg}");
    }

    /// Progress milestone; suppressed by `--quiet`.
    pub fn info(&self, msg: &str) {
        if self.level != Verbosity::Quiet {
            eprintln!("{msg}");
        }
    }

    /// Per-step detail; printed only with `--verbose`.
    pub fn debug(&self, msg: &str) {
        if self.level == Verbosity::Verbose {
            eprintln!("{msg}");
        }
    }

    /// The configured level.
    pub fn level(&self) -> Verbosity {
        self.level
    }
}
