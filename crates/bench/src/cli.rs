//! Argument parsing for the `reproduce` binary.
//!
//! Lives in the library so the parsing rules are unit-testable: unknown
//! experiments and malformed numbers must be rejected up front with a clear
//! message (and a nonzero exit in the binary), never silently defaulted —
//! a bad flag would otherwise waste a five-workload measurement run.
//!
//! Four commands: the default measurement run, `reproduce diff A B`
//! which compares two exported run directories for CI gating,
//! `reproduce bench-check BASELINE CANDIDATE` which gates on host
//! throughput regressions, and `reproduce resume DIR` which completes an
//! interrupted run from its checkpoints.

use std::path::PathBuf;

use vax780::FaultClass;

use crate::options::{parse_f64, parse_shard_timeout, parse_u64, CommonOpts};
use crate::progress::Verbosity;

/// Valid `--experiment` values.
pub const EXPERIMENTS: &[&str] = &[
    "all", "fig1", "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
    "table9", "events",
];

/// Output format for the reproduction results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Human-readable tables on stdout.
    #[default]
    Text,
    /// Machine-readable JSON (tables, measurement, time series, manifest).
    Json,
}

/// Parsed command line for `reproduce`.
#[derive(Debug, Clone)]
pub struct Options {
    /// Instructions measured per workload.
    pub instructions: u64,
    /// Root RNG seed; each `(workload, shard)` cell runs with a
    /// SplitMix64-split stream of it (`vax_workload::rte::shard_seed`).
    pub seed: u64,
    /// Worker threads for the sharded execution engine (≥ 1). Changes
    /// wall-clock time only, never results: exports are byte-identical at
    /// any job count.
    pub jobs: usize,
    /// Replica shards per workload (≥ 1). Changes the experiment: each
    /// shard measures `instructions` with its own seed stream and the
    /// shards merge into the workload's measurement.
    pub shards: u64,
    /// Which table/figure to emit (one of [`EXPERIMENTS`]).
    pub experiment: String,
    /// Also print the five constituent per-workload CPIs.
    pub per_workload: bool,
    /// Output format.
    pub format: Format,
    /// Directory for machine-readable artifacts (manifest, tables, time
    /// series, validation report). Created if absent.
    pub out: Option<PathBuf>,
    /// Interval-sampler period in cycles for the telemetry time series.
    pub interval_cycles: u64,
    /// Emit the µPC attribution profile (hot-routine report, folded stacks,
    /// profile.json).
    pub profile: bool,
    /// Rows in the hot-routine report.
    pub top: usize,
    /// Flight-recorder capacity in instructions; 0 disables it.
    pub flight_recorder: usize,
    /// Stderr narration level (`--quiet` / `--verbose`).
    pub verbosity: Verbosity,
    /// Directory for the host self-metering report `BENCH_<unix-ts>.json`.
    pub bench_out: Option<PathBuf>,
    /// Fault-injection seed: when set, every `(workload, shard)` cell runs
    /// under a deterministic [`vax780::FaultPlan`] split from this seed.
    pub fault_seed: Option<u64>,
    /// Fault classes to inject (canonical order; all of them unless
    /// `--fault-classes` narrows the set). Empty iff `fault_seed` is unset.
    pub fault_classes: Vec<FaultClass>,
    /// Extra attempts for a shard whose run panics or times out. Each
    /// attempt builds a fresh system from the same shard seed, so a retry
    /// that succeeds is byte-identical to a first-attempt success.
    pub retries: u32,
    /// Per-attempt wall-clock budget in seconds for one shard; exceeded ⇒
    /// the shard's watchdog trips and the attempt counts as failed.
    pub shard_timeout_secs: Option<f64>,
    /// Exit nonzero when any cell was quarantined (partial results are
    /// still exported either way).
    pub strict: bool,
    /// Test hook: make cell `(workload, shard)` panic on its first N
    /// attempts (`--inject-panic W:S:N`), exercising the supervisor.
    pub inject_panic: Option<(u64, u64, u32)>,
    /// Write a Chrome Trace Event file of the whole run here
    /// (`--trace-out FILE`; opens in Perfetto). Enables the tracer.
    pub trace_out: Option<PathBuf>,
    /// Emit a machine-readable progress heartbeat on stderr every N ms
    /// (`--progress` = 1000, `--progress=MS`). Enables the tracer.
    pub progress_ms: Option<u64>,
    /// Cooperative cancel token, checked at cell boundaries. The CLI
    /// leaves it inert (no flag sets it); the serve daemon installs a live
    /// token so `POST /jobs/:id/cancel` and `deadline_secs` can stop the
    /// grid between cells.
    pub cancel: crate::cancel::CancelToken,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            instructions: crate::DEFAULT_INSTRUCTIONS,
            seed: crate::DEFAULT_SEED,
            jobs: 1,
            shards: 1,
            experiment: "all".to_string(),
            per_workload: false,
            format: Format::Text,
            out: None,
            interval_cycles: 500_000,
            profile: false,
            top: 20,
            flight_recorder: 0,
            verbosity: Verbosity::Normal,
            bench_out: None,
            fault_seed: None,
            fault_classes: Vec::new(),
            retries: 0,
            shard_timeout_secs: None,
            strict: false,
            inject_panic: None,
            trace_out: None,
            progress_ms: None,
            cancel: crate::cancel::CancelToken::default(),
        }
    }
}

/// Options for `reproduce resume DIR`. The experiment definition comes from
/// the checkpoint header in `DIR/checkpoints/run.json`; only runtime knobs
/// (parallelism, supervision, narration) can be chosen at resume time.
#[derive(Debug, Clone)]
pub struct ResumeOptions {
    /// The interrupted run's output directory (with its `checkpoints/`).
    pub dir: PathBuf,
    /// Worker threads for the remaining cells.
    pub jobs: usize,
    /// Retry budget for the remaining cells.
    pub retries: u32,
    /// Watchdog budget per attempt, in seconds.
    pub shard_timeout_secs: Option<f64>,
    /// Exit nonzero if any cell is quarantined.
    pub strict: bool,
    /// Stderr narration level.
    pub verbosity: Verbosity,
    /// Chrome-trace output file for the resumed portion of the run.
    pub trace_out: Option<PathBuf>,
    /// Progress-heartbeat period in ms.
    pub progress_ms: Option<u64>,
    /// Cooperative cancel token (see [`Options::cancel`]).
    pub cancel: crate::cancel::CancelToken,
}

/// Options for `reproduce serve`: the long-lived characterization daemon.
/// Engine-level knobs (`--jobs`, `--retries`) set the defaults a submitted
/// `JobSpec` inherits when it leaves them unspecified.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// `HOST:PORT` to bind (default `127.0.0.1:4780`).
    pub addr: String,
    /// Root directory for per-job run directories (default `serve-runs`).
    pub root: PathBuf,
    /// Default worker threads per job.
    pub jobs: usize,
    /// Default retry budget per cell.
    pub retries: u32,
    /// Concurrent-connection cap: the daemon sheds load with `503` +
    /// `Retry-After` beyond this many in-flight connections, so a flood
    /// cannot exhaust file descriptors or threads.
    pub max_connections: usize,
    /// Stderr narration level.
    pub verbosity: Verbosity,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:4780".to_string(),
            root: PathBuf::from("serve-runs"),
            jobs: 1,
            retries: 0,
            max_connections: 64,
            verbosity: Verbosity::Normal,
        }
    }
}

/// Options for `reproduce diff`.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Baseline run directory (usually the committed golden run).
    pub baseline: PathBuf,
    /// Candidate run directory (usually freshly generated).
    pub candidate: PathBuf,
    /// Absolute numeric slack (default 0 — exact).
    pub abs_tol: f64,
    /// Relative numeric slack scaled by magnitude (default 0 — exact).
    pub rel_tol: f64,
}

/// Options shared by `reproduce characterize` and `reproduce refute`
/// (refute adds the model/fixture knobs; characterize ignores them).
#[derive(Debug, Clone)]
pub struct CharacterizeOptions {
    /// Opcode filter (mnemonics, upper-cased); empty = the full table.
    pub opcodes: Vec<String>,
    /// Addressing-mode filter (mode keys); empty = all 16 modes.
    pub modes: Vec<String>,
    /// Probe copies per loop iteration.
    pub reps: u32,
    /// Measured loop iterations per cell.
    pub iters: u64,
    /// Warmup instructions per cell.
    pub warmup: u64,
    /// Worker threads for the probe grid.
    pub jobs: usize,
    /// Retry budget per cell.
    pub retries: u32,
    /// Directory for `costs.json` / `costs.md` (and `runtime.json` when
    /// traced). Stdout when absent (characterize only).
    pub out: Option<PathBuf>,
    /// Print the opcode × mode grid with skip reasons and exit — no
    /// simulation (characterize only).
    pub list: bool,
    /// Stderr narration level.
    pub verbosity: Verbosity,
    /// Chrome-trace output file.
    pub trace_out: Option<PathBuf>,
    /// Progress-heartbeat period in ms.
    pub progress_ms: Option<u64>,
    /// Cooperative cancel token (see [`Options::cancel`]).
    pub cancel: crate::cancel::CancelToken,
    /// Cost table to refute (`refute --model costs.json`).
    pub model: Option<PathBuf>,
    /// Absolute model tolerance, cycles per instruction.
    pub abs_tol: f64,
    /// Relative model tolerance.
    pub rel_tol: f64,
    /// Directory for minimized refutation fixtures (refute only).
    pub fixtures: Option<PathBuf>,
    /// Minimize and record at most this many refutations (the rest are
    /// still counted and reported).
    pub max_refutations: usize,
}

impl Default for CharacterizeOptions {
    fn default() -> CharacterizeOptions {
        CharacterizeOptions {
            opcodes: Vec::new(),
            modes: Vec::new(),
            reps: 8,
            iters: 64,
            warmup: 2000,
            jobs: 1,
            retries: 0,
            out: None,
            list: false,
            verbosity: Verbosity::Normal,
            trace_out: None,
            progress_ms: None,
            cancel: crate::cancel::CancelToken::default(),
            model: None,
            abs_tol: 0.5,
            rel_tol: 0.01,
            fixtures: None,
            max_refutations: 8,
        }
    }
}

/// A parsed invocation: the measurement run, the run-directory diff, the
/// host-throughput gate, the checkpoint resume, the trace validator, or
/// the characterization observatory (cost tables / counter refutation).
#[derive(Debug, Clone)]
pub enum Command {
    /// The default five-workload measurement run.
    Run(Options),
    /// `reproduce diff BASELINE CANDIDATE`.
    Diff(DiffOptions),
    /// `reproduce bench-check BASELINE CANDIDATE`.
    BenchCheck(crate::benchcheck::BenchCheckOptions),
    /// `reproduce resume DIR`.
    Resume(ResumeOptions),
    /// `reproduce trace-check FILE`: validate a Chrome-trace file's
    /// structural invariants.
    TraceCheck(PathBuf),
    /// `reproduce characterize`: per-opcode × addressing-mode cost table.
    Characterize(CharacterizeOptions),
    /// `reproduce refute`: adversarial counter cross-checks over the same
    /// probe grid.
    Refute(CharacterizeOptions),
    /// `reproduce serve`: HTTP job daemon over the same engine.
    Serve(ServeOptions),
}

/// One-line usage string.
pub fn usage() -> String {
    "usage: reproduce [--instructions N] [--seed S] [--jobs N] [--shards K] \
     [--experiment fig1|table1..table9|events|all] [--per-workload] \
     [--format text|json] [--out DIR] [--interval-cycles N] \
     [--profile] [--top N] [--flight-recorder K] [--quiet|--verbose] \
     [--bench-out DIR] [--fault-seed S] [--fault-classes C1,C2,..] \
     [--retries N] [--shard-timeout SECS] [--strict] [--inject-panic W:S:N] \
     [--trace-out FILE] [--progress[=MS]]\n\
     \x20      reproduce diff BASELINE_DIR CANDIDATE_DIR [--abs-tol X] [--rel-tol X]\n\
     \x20      reproduce bench-check BASELINE_JSON CANDIDATE_JSON_OR_DIR \
     [--max-regression FRAC]\n\
     \x20      reproduce resume DIR [--jobs N] [--retries N] [--shard-timeout SECS] \
     [--strict] [--quiet|--verbose] [--trace-out FILE] [--progress[=MS]]\n\
     \x20      reproduce trace-check TRACE_JSON\n\
     \x20      reproduce characterize [--opcodes M1,M2,..] [--modes K1,K2,..] \
     [--reps N] [--iters N] [--warmup N] [--jobs N] [--retries N] [--out DIR] \
     [--list] [--quiet|--verbose] [--trace-out FILE] [--progress[=MS]]\n\
     \x20      reproduce refute [same as characterize, minus --list] \
     [--model COSTS_JSON] [--abs-tol X] [--rel-tol X] [--fixtures DIR] \
     [--max-refutations N]\n\
     \x20      reproduce serve [--addr HOST:PORT] [--root DIR] [--jobs N] \
     [--retries N] [--max-connections N] [--quiet|--verbose]"
        .to_string()
}

/// Parse the full argument list (without the program name), dispatching on
/// the optional `diff` subcommand.
///
/// # Errors
/// Returns a message describing the first invalid flag or value; the caller
/// should print it and exit nonzero.
pub fn parse_command(args: &[String]) -> Result<Command, String> {
    match args.first().map(String::as_str) {
        Some("diff") => parse_diff_args(&args[1..]).map(Command::Diff),
        Some("bench-check") => parse_bench_check_args(&args[1..]).map(Command::BenchCheck),
        Some("resume") => parse_resume_args(&args[1..]).map(Command::Resume),
        Some("trace-check") => parse_trace_check_args(&args[1..]).map(Command::TraceCheck),
        Some("characterize") => {
            parse_characterize_args(&args[1..], false).map(Command::Characterize)
        }
        Some("refute") => parse_characterize_args(&args[1..], true).map(Command::Refute),
        Some("serve") => parse_serve_args(&args[1..]).map(Command::Serve),
        _ => parse_args(args).map(Command::Run),
    }
}

/// Parse `reproduce characterize` / `reproduce refute` arguments (after
/// the subcommand word). `refute` unlocks the model/fixture flags and
/// locks `--list`.
pub fn parse_characterize_args(
    args: &[String],
    refute: bool,
) -> Result<CharacterizeOptions, String> {
    let cmd = if refute { "refute" } else { "characterize" };
    let mut opts = CharacterizeOptions::default();
    let mut common = CommonOpts::default();
    let mut i = 0;
    while i < args.len() {
        if common.try_parse(args, &mut i)? {
            continue;
        }
        match args[i].as_str() {
            "--opcodes" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| "--opcodes requires a comma-separated list".to_string())?;
                for mn in raw.split(',').filter(|s| !s.is_empty()) {
                    if vax_arch::Opcode::from_mnemonic(mn).is_none() {
                        return Err(format!("unknown opcode '{mn}' in --opcodes"));
                    }
                    opts.opcodes.push(mn.to_uppercase());
                }
                if opts.opcodes.is_empty() {
                    return Err("--opcodes requires at least one mnemonic".to_string());
                }
            }
            "--modes" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| "--modes requires a comma-separated list".to_string())?;
                for key in raw.split(',').filter(|s| !s.is_empty()) {
                    if vax_asm::probe::mode_from_key(key).is_none() {
                        return Err(format!(
                            "unknown addressing mode '{key}' in --modes (e.g. register, \
                             byte_disp, pc_relative_deferred)"
                        ));
                    }
                    opts.modes.push(key.to_string());
                }
                if opts.modes.is_empty() {
                    return Err("--modes requires at least one mode key".to_string());
                }
            }
            "--reps" => {
                i += 1;
                let n = parse_u64("--reps", args.get(i))?;
                if n == 0 || n > u64::from(vax_asm::probe::MAX_REPS) {
                    return Err(format!(
                        "--reps must be between 1 and {}",
                        vax_asm::probe::MAX_REPS
                    ));
                }
                opts.reps = n as u32;
            }
            "--iters" => {
                i += 1;
                opts.iters = parse_u64("--iters", args.get(i))?;
                if opts.iters == 0 {
                    return Err("--iters must be at least 1".to_string());
                }
            }
            "--warmup" => {
                i += 1;
                opts.warmup = parse_u64("--warmup", args.get(i))?;
            }
            "--out" => {
                i += 1;
                let dir = args
                    .get(i)
                    .ok_or_else(|| "--out requires a directory".to_string())?;
                opts.out = Some(PathBuf::from(dir));
            }
            "--list" if !refute => opts.list = true,
            "--model" if refute => {
                i += 1;
                let file = args
                    .get(i)
                    .ok_or_else(|| "--model requires a costs.json path".to_string())?;
                opts.model = Some(PathBuf::from(file));
            }
            "--abs-tol" if refute => {
                i += 1;
                opts.abs_tol = parse_f64("--abs-tol", args.get(i))?;
            }
            "--rel-tol" if refute => {
                i += 1;
                opts.rel_tol = parse_f64("--rel-tol", args.get(i))?;
            }
            "--fixtures" if refute => {
                i += 1;
                let dir = args
                    .get(i)
                    .ok_or_else(|| "--fixtures requires a directory".to_string())?;
                opts.fixtures = Some(PathBuf::from(dir));
            }
            "--max-refutations" if refute => {
                i += 1;
                opts.max_refutations = parse_u64("--max-refutations", args.get(i))? as usize;
            }
            other => return Err(format!("unknown argument '{other}' for {cmd}\n{}", usage())),
        }
        i += 1;
    }
    opts.verbosity = common.verbosity()?;
    if let Some(jobs) = common.jobs {
        opts.jobs = jobs;
    }
    if let Some(retries) = common.retries {
        opts.retries = retries;
    }
    opts.trace_out = common.trace_out;
    opts.progress_ms = common.progress_ms;
    Ok(opts)
}

/// Parse `reproduce serve` arguments (after the subcommand word).
pub fn parse_serve_args(args: &[String]) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions::default();
    let mut common = CommonOpts::default();
    let mut i = 0;
    while i < args.len() {
        if common.try_parse(args, &mut i)? {
            continue;
        }
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                let addr = args
                    .get(i)
                    .ok_or_else(|| "--addr requires HOST:PORT".to_string())?;
                if !addr.contains(':') {
                    return Err(format!(
                        "invalid value for --addr: '{addr}' (expected HOST:PORT)"
                    ));
                }
                opts.addr = addr.clone();
            }
            "--root" => {
                i += 1;
                let dir = args
                    .get(i)
                    .ok_or_else(|| "--root requires a directory".to_string())?;
                opts.root = PathBuf::from(dir);
            }
            "--max-connections" => {
                i += 1;
                let n = parse_u64("--max-connections", args.get(i))?;
                if n == 0 {
                    return Err(
                        "invalid value for --max-connections: '0' (expected at least 1)"
                            .to_string(),
                    );
                }
                opts.max_connections = n as usize;
            }
            other => return Err(format!("unknown argument '{other}' for serve\n{}", usage())),
        }
        i += 1;
    }
    if common.trace_out.is_some() || common.progress_ms.is_some() {
        return Err(
            "serve manages tracing per job; --trace-out/--progress are not accepted".to_string(),
        );
    }
    opts.verbosity = common.verbosity()?;
    if let Some(jobs) = common.jobs {
        opts.jobs = jobs;
    }
    if let Some(retries) = common.retries {
        opts.retries = retries;
    }
    Ok(opts)
}

/// Parse `reproduce trace-check` arguments: exactly one trace file.
pub fn parse_trace_check_args(args: &[String]) -> Result<PathBuf, String> {
    match args {
        [file] if !file.starts_with("--") => Ok(PathBuf::from(file)),
        [] => Err(format!("trace-check requires a trace file\n{}", usage())),
        _ => Err(format!(
            "trace-check takes exactly one trace file\n{}",
            usage()
        )),
    }
}

/// Parse the `--inject-panic W:S:N` test hook.
fn parse_inject_panic(value: Option<&String>) -> Result<(u64, u64, u32), String> {
    let raw = value.ok_or_else(|| "--inject-panic requires a value".to_string())?;
    let parts: Vec<&str> = raw.split(':').collect();
    let parsed: Option<(u64, u64, u32)> = match parts.as_slice() {
        [w, s, n] => w
            .parse()
            .ok()
            .zip(s.parse().ok())
            .zip(n.parse().ok())
            .map(|((w, s), n)| (w, s, n)),
        _ => None,
    };
    parsed.ok_or_else(|| {
        format!("invalid value for --inject-panic: '{raw}' (expected WORKLOAD:SHARD:ATTEMPTS)")
    })
}

/// Parse `reproduce resume` arguments (after the subcommand word).
pub fn parse_resume_args(args: &[String]) -> Result<ResumeOptions, String> {
    let mut dir: Option<PathBuf> = None;
    let mut opts = ResumeOptions {
        dir: PathBuf::new(),
        jobs: 1,
        retries: 0,
        shard_timeout_secs: None,
        strict: false,
        verbosity: Verbosity::Normal,
        trace_out: None,
        progress_ms: None,
        cancel: crate::cancel::CancelToken::default(),
    };
    let mut common = CommonOpts::default();
    let mut i = 0;
    while i < args.len() {
        if common.try_parse(args, &mut i)? {
            continue;
        }
        match args[i].as_str() {
            "--shard-timeout" => {
                i += 1;
                opts.shard_timeout_secs = Some(parse_shard_timeout(args.get(i))?);
            }
            "--strict" => opts.strict = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown argument '{flag}' for resume\n{}", usage()))
            }
            path => {
                if dir.replace(PathBuf::from(path)).is_some() {
                    return Err(format!(
                        "resume takes exactly one run directory (got extra '{path}')\n{}",
                        usage()
                    ));
                }
            }
        }
        i += 1;
    }
    opts.verbosity = common.verbosity()?;
    if let Some(jobs) = common.jobs {
        opts.jobs = jobs;
    }
    if let Some(retries) = common.retries {
        opts.retries = retries;
    }
    opts.trace_out = common.trace_out;
    opts.progress_ms = common.progress_ms;
    opts.dir = dir.ok_or_else(|| format!("resume requires a run directory\n{}", usage()))?;
    Ok(opts)
}

/// Parse `reproduce bench-check` arguments (after the subcommand word).
pub fn parse_bench_check_args(
    args: &[String],
) -> Result<crate::benchcheck::BenchCheckOptions, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut max_regression = 0.30;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regression" => {
                i += 1;
                max_regression = parse_f64("--max-regression", args.get(i))?;
                if max_regression >= 1.0 {
                    return Err(format!(
                        "invalid value for --max-regression: '{max_regression}' \
                         (expected a fraction below 1.0)"
                    ));
                }
            }
            flag if flag.starts_with("--") => {
                return Err(format!(
                    "unknown argument '{flag}' for bench-check\n{}",
                    usage()
                ))
            }
            path => paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if paths.len() != 2 {
        return Err(format!(
            "bench-check takes a baseline report and a candidate report or \
             directory (got {} paths)\n{}",
            paths.len(),
            usage()
        ));
    }
    let candidate = paths.pop().unwrap();
    let baseline = paths.pop().unwrap();
    Ok(crate::benchcheck::BenchCheckOptions {
        baseline,
        candidate,
        max_regression,
    })
}

/// Parse `reproduce diff` arguments (after the subcommand word).
pub fn parse_diff_args(args: &[String]) -> Result<DiffOptions, String> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut abs_tol = 0.0;
    let mut rel_tol = 0.0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--abs-tol" => {
                i += 1;
                abs_tol = parse_f64("--abs-tol", args.get(i))?;
            }
            "--rel-tol" => {
                i += 1;
                rel_tol = parse_f64("--rel-tol", args.get(i))?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown argument '{flag}' for diff\n{}", usage()))
            }
            dir => dirs.push(PathBuf::from(dir)),
        }
        i += 1;
    }
    if dirs.len() != 2 {
        return Err(format!(
            "diff takes exactly two run directories (got {})\n{}",
            dirs.len(),
            usage()
        ));
    }
    let candidate = dirs.pop().unwrap();
    let baseline = dirs.pop().unwrap();
    Ok(DiffOptions {
        baseline,
        candidate,
        abs_tol,
        rel_tol,
    })
}

/// Parse run-mode arguments (without the program name).
///
/// # Errors
/// Returns a message describing the first invalid flag or value; the caller
/// should print it and exit nonzero.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut common = CommonOpts::default();
    let mut i = 0;
    while i < args.len() {
        if common.try_parse(args, &mut i)? {
            continue;
        }
        match args[i].as_str() {
            "--instructions" => {
                i += 1;
                opts.instructions = parse_u64("--instructions", args.get(i))?;
                if opts.instructions == 0 {
                    return Err("--instructions must be at least 1".to_string());
                }
            }
            "--seed" => {
                i += 1;
                opts.seed = parse_u64("--seed", args.get(i))?;
            }
            "--shards" => {
                i += 1;
                opts.shards = parse_u64("--shards", args.get(i))?;
                if opts.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--interval-cycles" => {
                i += 1;
                opts.interval_cycles = parse_u64("--interval-cycles", args.get(i))?;
                if opts.interval_cycles == 0 {
                    return Err("--interval-cycles must be at least 1".to_string());
                }
            }
            "--experiment" => {
                i += 1;
                let e = args
                    .get(i)
                    .ok_or_else(|| "--experiment requires a value".to_string())?;
                if !EXPERIMENTS.contains(&e.as_str()) {
                    return Err(format!(
                        "unknown experiment '{e}' (expected one of: {})",
                        EXPERIMENTS.join(", ")
                    ));
                }
                opts.experiment = e.clone();
            }
            "--format" => {
                i += 1;
                let f = args
                    .get(i)
                    .ok_or_else(|| "--format requires a value".to_string())?;
                opts.format = match f.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format '{other}' (expected text|json)")),
                };
            }
            "--out" => {
                i += 1;
                let dir = args
                    .get(i)
                    .ok_or_else(|| "--out requires a directory".to_string())?;
                opts.out = Some(PathBuf::from(dir));
            }
            "--bench-out" => {
                i += 1;
                let dir = args
                    .get(i)
                    .ok_or_else(|| "--bench-out requires a directory".to_string())?;
                opts.bench_out = Some(PathBuf::from(dir));
            }
            "--top" => {
                i += 1;
                let n = parse_u64("--top", args.get(i))?;
                if n == 0 {
                    return Err("--top must be at least 1".to_string());
                }
                opts.top = n as usize;
            }
            "--flight-recorder" => {
                i += 1;
                opts.flight_recorder = parse_u64("--flight-recorder", args.get(i))? as usize;
            }
            "--fault-seed" => {
                i += 1;
                opts.fault_seed = Some(parse_u64("--fault-seed", args.get(i))?);
            }
            "--fault-classes" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| "--fault-classes requires a value".to_string())?;
                opts.fault_classes = vax780::parse_classes(raw)?;
            }
            "--shard-timeout" => {
                i += 1;
                opts.shard_timeout_secs = Some(parse_shard_timeout(args.get(i))?);
            }
            "--inject-panic" => {
                i += 1;
                opts.inject_panic = Some(parse_inject_panic(args.get(i))?);
            }
            "--strict" => opts.strict = true,
            "--per-workload" => opts.per_workload = true,
            "--profile" => opts.profile = true,
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
        i += 1;
    }
    match opts.fault_seed {
        // Classes without a seed would silently inject nothing.
        None if !opts.fault_classes.is_empty() => {
            return Err("--fault-classes requires --fault-seed".to_string());
        }
        Some(_) if opts.fault_classes.is_empty() => {
            opts.fault_classes = FaultClass::ALL.to_vec();
        }
        _ => {}
    }
    opts.verbosity = common.verbosity()?;
    if let Some(jobs) = common.jobs {
        opts.jobs = jobs;
    }
    if let Some(retries) = common.retries {
        opts.retries = retries;
    }
    opts.trace_out = common.trace_out;
    opts.progress_ms = common.progress_ms;
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&v)
    }

    fn parse_cmd(args: &[&str]) -> Result<Command, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_command(&v)
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.instructions, crate::DEFAULT_INSTRUCTIONS);
        assert_eq!(o.seed, crate::DEFAULT_SEED);
        assert_eq!(o.jobs, 1);
        assert_eq!(o.shards, 1);
        assert_eq!(o.experiment, "all");
        assert_eq!(o.format, Format::Text);
        assert!(o.out.is_none());
        assert!(!o.profile);
        assert_eq!(o.top, 20);
        assert_eq!(o.flight_recorder, 0);
        assert_eq!(o.verbosity, Verbosity::Normal);
        assert!(o.bench_out.is_none());
    }

    #[test]
    fn full_flag_set() {
        let o = parse(&[
            "--instructions",
            "5000",
            "--seed",
            "7",
            "--jobs",
            "4",
            "--shards",
            "2",
            "--experiment",
            "table8",
            "--per-workload",
            "--format",
            "json",
            "--out",
            "/tmp/x",
            "--interval-cycles",
            "1000",
            "--profile",
            "--top",
            "5",
            "--flight-recorder",
            "64",
            "--verbose",
            "--bench-out",
            "/tmp/bench",
        ])
        .unwrap();
        assert_eq!(o.instructions, 5000);
        assert_eq!(o.seed, 7);
        assert_eq!(o.jobs, 4);
        assert_eq!(o.shards, 2);
        assert_eq!(o.experiment, "table8");
        assert!(o.per_workload);
        assert_eq!(o.format, Format::Json);
        assert_eq!(o.out.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(o.interval_cycles, 1000);
        assert!(o.profile);
        assert_eq!(o.top, 5);
        assert_eq!(o.flight_recorder, 64);
        assert_eq!(o.verbosity, Verbosity::Verbose);
        assert_eq!(
            o.bench_out.as_deref(),
            Some(std::path::Path::new("/tmp/bench"))
        );
    }

    #[test]
    fn rejects_unknown_experiment() {
        let err = parse(&["--experiment", "table99"]).unwrap_err();
        assert!(err.contains("unknown experiment 'table99'"), "{err}");
        assert!(err.contains("table9"), "message lists valid values: {err}");
    }

    #[test]
    fn rejects_malformed_numbers() {
        for flag in ["--instructions", "--seed", "--interval-cycles"] {
            let err = parse(&[flag, "12abc"]).unwrap_err();
            assert!(err.contains(flag), "{err}");
            assert!(err.contains("12abc"), "{err}");
            let err = parse(&[flag]).unwrap_err();
            assert!(err.contains("requires a value"), "{err}");
        }
        assert!(
            parse(&["--instructions", "-5"]).is_err(),
            "negative rejected"
        );
    }

    #[test]
    fn rejects_zero_where_meaningless() {
        assert!(parse(&["--instructions", "0"]).is_err());
        assert!(parse(&["--interval-cycles", "0"]).is_err());
        assert!(parse(&["--top", "0"]).is_err());
        let err = parse(&["--jobs", "0"]).unwrap_err();
        assert!(err.contains("--jobs must be at least 1"), "{err}");
        let err = parse(&["--shards", "0"]).unwrap_err();
        assert!(err.contains("--shards must be at least 1"), "{err}");
        assert!(parse(&["--seed", "0"]).is_ok(), "seed zero is valid");
        assert!(
            parse(&["--flight-recorder", "0"]).is_ok(),
            "zero capacity means disabled"
        );
    }

    #[test]
    fn rejects_unknown_flag_and_format() {
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("--frobnicate"));
        assert!(parse(&["--format", "xml"]).unwrap_err().contains("xml"));
    }

    #[test]
    fn quiet_and_verbose_conflict() {
        assert!(parse(&["--quiet", "--verbose"])
            .unwrap_err()
            .contains("mutually exclusive"));
        assert_eq!(parse(&["--quiet"]).unwrap().verbosity, Verbosity::Quiet);
    }

    #[test]
    fn fault_flags_parse() {
        let o = parse(&["--fault-seed", "7"]).unwrap();
        assert_eq!(o.fault_seed, Some(7));
        assert_eq!(o.fault_classes, FaultClass::ALL.to_vec(), "defaults to all");

        let o = parse(&["--fault-seed", "7", "--fault-classes", "parity,smc"]).unwrap();
        assert_eq!(
            o.fault_classes,
            vec![FaultClass::Parity, FaultClass::Smc],
            "canonical order, narrowed set"
        );

        let err = parse(&["--fault-classes", "parity"]).unwrap_err();
        assert!(err.contains("requires --fault-seed"), "{err}");
        assert!(parse(&["--fault-seed", "7", "--fault-classes", "bogus"]).is_err());

        let o = parse(&[]).unwrap();
        assert!(o.fault_seed.is_none());
        assert!(o.fault_classes.is_empty());
    }

    #[test]
    fn supervision_flags_parse() {
        let o = parse(&[
            "--retries",
            "2",
            "--shard-timeout",
            "1.5",
            "--strict",
            "--inject-panic",
            "1:0:2",
        ])
        .unwrap();
        assert_eq!(o.retries, 2);
        assert_eq!(o.shard_timeout_secs, Some(1.5));
        assert!(o.strict);
        assert_eq!(o.inject_panic, Some((1, 0, 2)));

        assert!(parse(&["--shard-timeout", "0"]).is_err());
        assert!(parse(&["--shard-timeout", "-1"]).is_err());
        for bad in ["1:2", "1:2:3:4", "a:0:1", ""] {
            assert!(parse(&["--inject-panic", bad]).is_err(), "{bad}");
        }
    }

    #[test]
    fn trace_flags_parse() {
        let o = parse(&["--trace-out", "/tmp/trace.json", "--progress"]).unwrap();
        assert_eq!(
            o.trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/trace.json"))
        );
        assert_eq!(o.progress_ms, Some(1000), "bare --progress defaults to 1s");

        let o = parse(&["--progress=250"]).unwrap();
        assert_eq!(o.progress_ms, Some(250));
        assert!(o.trace_out.is_none());

        let o = parse(&[]).unwrap();
        assert!(o.trace_out.is_none() && o.progress_ms.is_none());

        assert!(parse(&["--trace-out"]).unwrap_err().contains("file path"));
        assert!(parse(&["--progress=0"]).unwrap_err().contains("at least 1"));
        assert!(parse(&["--progress=abc"]).unwrap_err().contains("abc"));
    }

    #[test]
    fn trace_check_subcommand_parses() {
        match parse_cmd(&["trace-check", "trace.json"]).unwrap() {
            Command::TraceCheck(p) => {
                assert_eq!(p, std::path::PathBuf::from("trace.json"));
            }
            _ => panic!("expected trace-check"),
        }
        assert!(parse_cmd(&["trace-check"])
            .unwrap_err()
            .contains("requires a trace file"));
        assert!(parse_cmd(&["trace-check", "a", "b"])
            .unwrap_err()
            .contains("exactly one"));
    }

    #[test]
    fn resume_accepts_trace_flags() {
        match parse_cmd(&[
            "resume",
            "/tmp/run",
            "--trace-out",
            "t.json",
            "--progress=500",
        ])
        .unwrap()
        {
            Command::Resume(r) => {
                assert_eq!(r.trace_out.as_deref(), Some(std::path::Path::new("t.json")));
                assert_eq!(r.progress_ms, Some(500));
            }
            _ => panic!("expected resume"),
        }
    }

    #[test]
    fn resume_subcommand_parses() {
        let cmd = parse_cmd(&[
            "resume",
            "/tmp/run",
            "--jobs",
            "4",
            "--retries",
            "1",
            "--shard-timeout",
            "30",
            "--strict",
            "--quiet",
        ])
        .unwrap();
        match cmd {
            Command::Resume(r) => {
                assert_eq!(r.dir, std::path::PathBuf::from("/tmp/run"));
                assert_eq!(r.jobs, 4);
                assert_eq!(r.retries, 1);
                assert_eq!(r.shard_timeout_secs, Some(30.0));
                assert!(r.strict);
                assert_eq!(r.verbosity, Verbosity::Quiet);
            }
            _ => panic!("expected resume"),
        }

        assert!(parse_cmd(&["resume"])
            .unwrap_err()
            .contains("requires a run directory"));
        assert!(parse_cmd(&["resume", "a", "b"])
            .unwrap_err()
            .contains("exactly one"));
        assert!(parse_cmd(&["resume", "a", "--frobnicate"])
            .unwrap_err()
            .contains("--frobnicate"));
    }

    #[test]
    fn diff_subcommand_parses() {
        let cmd = parse_cmd(&["diff", "a", "b", "--rel-tol", "0.01"]).unwrap();
        match cmd {
            Command::Diff(d) => {
                assert_eq!(d.baseline, std::path::PathBuf::from("a"));
                assert_eq!(d.candidate, std::path::PathBuf::from("b"));
                assert_eq!(d.abs_tol, 0.0);
                assert_eq!(d.rel_tol, 0.01);
            }
            _ => panic!("expected diff"),
        }
        match parse_cmd(&["--profile"]).unwrap() {
            Command::Run(o) => assert!(o.profile),
            _ => panic!("expected run"),
        }
    }

    #[test]
    fn bench_check_subcommand_parses() {
        let cmd =
            parse_cmd(&["bench-check", "base.json", "out", "--max-regression", "0.5"]).unwrap();
        match cmd {
            Command::BenchCheck(o) => {
                assert_eq!(o.baseline, std::path::PathBuf::from("base.json"));
                assert_eq!(o.candidate, std::path::PathBuf::from("out"));
                assert_eq!(o.max_regression, 0.5);
            }
            _ => panic!("expected bench-check"),
        }
        match parse_cmd(&["bench-check", "a", "b"]).unwrap() {
            Command::BenchCheck(o) => assert_eq!(o.max_regression, 0.30),
            _ => panic!("expected bench-check"),
        }
    }

    #[test]
    fn bench_check_rejects_bad_shapes() {
        assert!(parse_cmd(&["bench-check", "a"])
            .unwrap_err()
            .contains("baseline report"));
        assert!(parse_cmd(&["bench-check", "a", "b", "c"])
            .unwrap_err()
            .contains("got 3"));
        assert!(parse_cmd(&["bench-check", "a", "b", "--max-regression", "1.5"]).is_err());
        assert!(parse_cmd(&["bench-check", "a", "b", "--max-regression", "-1"]).is_err());
        assert!(parse_cmd(&["bench-check", "a", "b", "--frobnicate"])
            .unwrap_err()
            .contains("--frobnicate"));
    }

    #[test]
    fn characterize_subcommand_parses() {
        let cmd = parse_cmd(&[
            "characterize",
            "--opcodes",
            "movl,ADDL2",
            "--modes",
            "register,byte_disp",
            "--reps",
            "4",
            "--iters",
            "32",
            "--warmup",
            "500",
            "--jobs",
            "4",
            "--out",
            "/tmp/ch",
            "--list",
        ])
        .unwrap();
        match cmd {
            Command::Characterize(o) => {
                assert_eq!(o.opcodes, vec!["MOVL", "ADDL2"]);
                assert_eq!(o.modes, vec!["register", "byte_disp"]);
                assert_eq!(o.reps, 4);
                assert_eq!(o.iters, 32);
                assert_eq!(o.warmup, 500);
                assert_eq!(o.jobs, 4);
                assert_eq!(o.out.as_deref(), Some(std::path::Path::new("/tmp/ch")));
                assert!(o.list);
            }
            _ => panic!("expected characterize"),
        }

        // Defaults.
        match parse_cmd(&["characterize"]).unwrap() {
            Command::Characterize(o) => {
                assert!(o.opcodes.is_empty() && o.modes.is_empty());
                assert_eq!((o.reps, o.iters, o.warmup), (8, 64, 2000));
                assert!(!o.list);
            }
            _ => panic!("expected characterize"),
        }
    }

    #[test]
    fn characterize_rejects_bad_values() {
        assert!(parse_cmd(&["characterize", "--opcodes", "NOPE"])
            .unwrap_err()
            .contains("unknown opcode 'NOPE'"));
        assert!(parse_cmd(&["characterize", "--modes", "sideways"])
            .unwrap_err()
            .contains("unknown addressing mode"));
        assert!(parse_cmd(&["characterize", "--reps", "0"])
            .unwrap_err()
            .contains("--reps"));
        assert!(parse_cmd(&["characterize", "--reps", "99"])
            .unwrap_err()
            .contains("--reps"));
        assert!(parse_cmd(&["characterize", "--iters", "0"]).is_err());
        // Refute-only flags are rejected outside refute.
        assert!(parse_cmd(&["characterize", "--model", "m.json"])
            .unwrap_err()
            .contains("--model"));
        assert!(parse_cmd(&["characterize", "--frobnicate"])
            .unwrap_err()
            .contains("--frobnicate"));
    }

    #[test]
    fn refute_subcommand_parses() {
        let cmd = parse_cmd(&[
            "refute",
            "--opcodes",
            "movl",
            "--model",
            "costs.json",
            "--abs-tol",
            "0.25",
            "--rel-tol",
            "0.05",
            "--fixtures",
            "/tmp/fx",
            "--max-refutations",
            "3",
        ])
        .unwrap();
        match cmd {
            Command::Refute(o) => {
                assert_eq!(o.opcodes, vec!["MOVL"]);
                assert_eq!(o.model.as_deref(), Some(std::path::Path::new("costs.json")));
                assert_eq!(o.abs_tol, 0.25);
                assert_eq!(o.rel_tol, 0.05);
                assert_eq!(o.fixtures.as_deref(), Some(std::path::Path::new("/tmp/fx")));
                assert_eq!(o.max_refutations, 3);
            }
            _ => panic!("expected refute"),
        }
        // --list is characterize-only.
        assert!(parse_cmd(&["refute", "--list"])
            .unwrap_err()
            .contains("--list"));
    }

    #[test]
    fn serve_subcommand_parses() {
        match parse_cmd(&[
            "serve",
            "--addr",
            "0.0.0.0:8080",
            "--root",
            "/tmp/jobs",
            "--jobs",
            "4",
            "--retries",
            "1",
            "--max-connections",
            "8",
            "--quiet",
        ])
        .unwrap()
        {
            Command::Serve(s) => {
                assert_eq!(s.addr, "0.0.0.0:8080");
                assert_eq!(s.root, std::path::PathBuf::from("/tmp/jobs"));
                assert_eq!(s.jobs, 4);
                assert_eq!(s.retries, 1);
                assert_eq!(s.max_connections, 8);
                assert_eq!(s.verbosity, Verbosity::Quiet);
            }
            _ => panic!("expected serve"),
        }
        match parse_cmd(&["serve"]).unwrap() {
            Command::Serve(s) => {
                assert_eq!(s.addr, "127.0.0.1:4780");
                assert_eq!(s.jobs, 1);
                assert_eq!(s.max_connections, 64);
            }
            _ => panic!("expected serve"),
        }
        assert!(parse_cmd(&["serve", "--addr", "nocolon"])
            .unwrap_err()
            .contains("HOST:PORT"));
        assert!(parse_cmd(&["serve", "--jobs", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_cmd(&["serve", "--max-connections", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_cmd(&["serve", "--trace-out", "t.json"])
            .unwrap_err()
            .contains("per job"));
        assert!(parse_cmd(&["serve", "--frobnicate"])
            .unwrap_err()
            .contains("--frobnicate"));
    }

    #[test]
    fn diff_rejects_bad_shapes() {
        assert!(parse_cmd(&["diff", "a"]).unwrap_err().contains("two run"));
        assert!(parse_cmd(&["diff", "a", "b", "c"])
            .unwrap_err()
            .contains("two run"));
        assert!(parse_cmd(&["diff", "a", "b", "--abs-tol", "-1"]).is_err());
        assert!(parse_cmd(&["diff", "a", "b", "--abs-tol", "nanx"]).is_err());
        assert!(parse_cmd(&["diff", "a", "b", "--frobnicate"])
            .unwrap_err()
            .contains("--frobnicate"));
    }
}
