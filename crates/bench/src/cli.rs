//! Argument parsing for the `reproduce` binary.
//!
//! Lives in the library so the parsing rules are unit-testable: unknown
//! experiments and malformed numbers must be rejected up front with a clear
//! message (and a nonzero exit in the binary), never silently defaulted —
//! a bad flag would otherwise waste a five-workload measurement run.

use std::path::PathBuf;

/// Valid `--experiment` values.
pub const EXPERIMENTS: &[&str] = &[
    "all", "fig1", "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
    "table9", "events",
];

/// Output format for the reproduction results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Human-readable tables on stdout.
    #[default]
    Text,
    /// Machine-readable JSON (tables, measurement, time series, manifest).
    Json,
}

/// Parsed command line for `reproduce`.
#[derive(Debug, Clone)]
pub struct Options {
    /// Instructions measured per workload.
    pub instructions: u64,
    /// Base RNG seed (workload `i` uses `seed + i`).
    pub seed: u64,
    /// Which table/figure to emit (one of [`EXPERIMENTS`]).
    pub experiment: String,
    /// Also print the five constituent per-workload CPIs.
    pub per_workload: bool,
    /// Output format.
    pub format: Format,
    /// Directory for machine-readable artifacts (manifest, tables, time
    /// series, validation report). Created if absent.
    pub out: Option<PathBuf>,
    /// Interval-sampler period in cycles for the telemetry time series.
    pub interval_cycles: u64,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            instructions: crate::DEFAULT_INSTRUCTIONS,
            seed: crate::DEFAULT_SEED,
            experiment: "all".to_string(),
            per_workload: false,
            format: Format::Text,
            out: None,
            interval_cycles: 500_000,
        }
    }
}

/// One-line usage string.
pub fn usage() -> String {
    "usage: reproduce [--instructions N] [--seed S] \
     [--experiment fig1|table1..table9|events|all] [--per-workload] \
     [--format text|json] [--out DIR] [--interval-cycles N]"
        .to_string()
}

fn parse_u64(flag: &str, value: Option<&String>) -> Result<u64, String> {
    let raw = value.ok_or_else(|| format!("{flag} requires a value"))?;
    raw.parse()
        .map_err(|_| format!("invalid value for {flag}: '{raw}' (expected a non-negative integer)"))
}

/// Parse the argument list (without the program name).
///
/// # Errors
/// Returns a message describing the first invalid flag or value; the caller
/// should print it and exit nonzero.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--instructions" => {
                i += 1;
                opts.instructions = parse_u64("--instructions", args.get(i))?;
                if opts.instructions == 0 {
                    return Err("--instructions must be at least 1".to_string());
                }
            }
            "--seed" => {
                i += 1;
                opts.seed = parse_u64("--seed", args.get(i))?;
            }
            "--interval-cycles" => {
                i += 1;
                opts.interval_cycles = parse_u64("--interval-cycles", args.get(i))?;
                if opts.interval_cycles == 0 {
                    return Err("--interval-cycles must be at least 1".to_string());
                }
            }
            "--experiment" => {
                i += 1;
                let e = args
                    .get(i)
                    .ok_or_else(|| "--experiment requires a value".to_string())?;
                if !EXPERIMENTS.contains(&e.as_str()) {
                    return Err(format!(
                        "unknown experiment '{e}' (expected one of: {})",
                        EXPERIMENTS.join(", ")
                    ));
                }
                opts.experiment = e.clone();
            }
            "--format" => {
                i += 1;
                let f = args
                    .get(i)
                    .ok_or_else(|| "--format requires a value".to_string())?;
                opts.format = match f.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format '{other}' (expected text|json)")),
                };
            }
            "--out" => {
                i += 1;
                let dir = args
                    .get(i)
                    .ok_or_else(|| "--out requires a directory".to_string())?;
                opts.out = Some(PathBuf::from(dir));
            }
            "--per-workload" => opts.per_workload = true,
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
        i += 1;
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&v)
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.instructions, crate::DEFAULT_INSTRUCTIONS);
        assert_eq!(o.seed, crate::DEFAULT_SEED);
        assert_eq!(o.experiment, "all");
        assert_eq!(o.format, Format::Text);
        assert!(o.out.is_none());
    }

    #[test]
    fn full_flag_set() {
        let o = parse(&[
            "--instructions",
            "5000",
            "--seed",
            "7",
            "--experiment",
            "table8",
            "--per-workload",
            "--format",
            "json",
            "--out",
            "/tmp/x",
            "--interval-cycles",
            "1000",
        ])
        .unwrap();
        assert_eq!(o.instructions, 5000);
        assert_eq!(o.seed, 7);
        assert_eq!(o.experiment, "table8");
        assert!(o.per_workload);
        assert_eq!(o.format, Format::Json);
        assert_eq!(o.out.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(o.interval_cycles, 1000);
    }

    #[test]
    fn rejects_unknown_experiment() {
        let err = parse(&["--experiment", "table99"]).unwrap_err();
        assert!(err.contains("unknown experiment 'table99'"), "{err}");
        assert!(err.contains("table9"), "message lists valid values: {err}");
    }

    #[test]
    fn rejects_malformed_numbers() {
        for flag in ["--instructions", "--seed", "--interval-cycles"] {
            let err = parse(&[flag, "12abc"]).unwrap_err();
            assert!(err.contains(flag), "{err}");
            assert!(err.contains("12abc"), "{err}");
            let err = parse(&[flag]).unwrap_err();
            assert!(err.contains("requires a value"), "{err}");
        }
        assert!(
            parse(&["--instructions", "-5"]).is_err(),
            "negative rejected"
        );
    }

    #[test]
    fn rejects_zero_where_meaningless() {
        assert!(parse(&["--instructions", "0"]).is_err());
        assert!(parse(&["--interval-cycles", "0"]).is_err());
        assert!(parse(&["--seed", "0"]).is_ok(), "seed zero is valid");
    }

    #[test]
    fn rejects_unknown_flag_and_format() {
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("--frobnicate"));
        assert!(parse(&["--format", "xml"]).unwrap_err().contains("xml"));
    }
}
