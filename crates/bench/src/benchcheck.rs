//! `reproduce bench-check`: the CI performance-smoke gate.
//!
//! Compares a fresh `BENCH_<ts>.json` self-metering report (see
//! [`crate::meter`]) against a checked-in soft baseline and fails when
//! simulated-instruction throughput regressed by more than the allowed
//! fraction. The tolerance is deliberately wide (default 30%): CI runners
//! are noisy and the gate exists to catch order-of-magnitude mistakes — an
//! accidentally disabled decode cache, a debug build, an O(n²) slip — not
//! single-digit drift.

use std::path::{Path, PathBuf};

use vax_analysis::Json;

/// Options for `reproduce bench-check`.
#[derive(Debug, Clone)]
pub struct BenchCheckOptions {
    /// The committed baseline `BENCH_*.json` (a file).
    pub baseline: PathBuf,
    /// The fresh report: a `BENCH_*.json` file, or a directory holding one
    /// or more (the newest by timestamped name is used).
    pub candidate: PathBuf,
    /// Allowed fractional throughput regression (0.30 = fail below 70% of
    /// the baseline's instructions/s).
    pub max_regression: f64,
}

/// Read `instructions_per_sec` out of one report.
fn load_ips(path: &Path) -> Result<f64, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    json.get("instructions_per_sec")
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite() && *v > 0.0)
        .ok_or_else(|| {
            format!(
                "{}: missing or non-positive 'instructions_per_sec'",
                path.display()
            )
        })
}

/// Resolve `candidate` to a concrete report file: the path itself, or the
/// newest `BENCH_*.json` inside it (timestamped names sort by age).
fn resolve_candidate(path: &Path) -> Result<PathBuf, String> {
    if path.is_file() {
        return Ok(path.to_path_buf());
    }
    let mut reports: Vec<PathBuf> = std::fs::read_dir(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?
        .filter_map(|ent| ent.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    reports.sort();
    reports
        .pop()
        .ok_or_else(|| format!("no BENCH_*.json in {}", path.display()))
}

/// Run the check. Returns a human-readable verdict line on success and an
/// explanation on failure (regression beyond tolerance, or unreadable
/// inputs).
///
/// # Errors
/// Returns a message naming the offending file or the measured regression;
/// the caller should print it and exit nonzero.
pub fn run_bench_check(opts: &BenchCheckOptions) -> Result<String, String> {
    let baseline_ips = load_ips(&opts.baseline)?;
    let candidate_path = resolve_candidate(&opts.candidate)?;
    let candidate_ips = load_ips(&candidate_path)?;

    let floor = baseline_ips * (1.0 - opts.max_regression);
    let ratio = candidate_ips / baseline_ips;
    let verdict = format!(
        "bench-check: {:.0} instructions/s vs baseline {:.0} ({}{:.1}%), floor {:.0}",
        candidate_ips,
        baseline_ips,
        if ratio >= 1.0 { "+" } else { "" },
        (ratio - 1.0) * 100.0,
        floor,
    );
    if candidate_ips < floor {
        return Err(format!(
            "{verdict}\nthroughput regressed more than {:.0}% below the baseline \
             ({} vs {})",
            opts.max_regression * 100.0,
            candidate_path.display(),
            opts.baseline.display(),
        ));
    }
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(dir: &Path, name: &str, ips: f64) -> PathBuf {
        let path = dir.join(name);
        std::fs::write(
            &path,
            format!("{{\"format_version\": 1, \"instructions_per_sec\": {ips}}}"),
        )
        .unwrap();
        path
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("benchcheck-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn passes_within_tolerance_and_fails_beyond() {
        let dir = tmpdir("tol");
        let baseline = report(&dir, "BENCH_1.json", 1_000_000.0);
        let ok = report(&dir, "ok.json", 750_000.0);
        let bad = report(&dir, "bad.json", 650_000.0);
        let check = |candidate: &Path| {
            run_bench_check(&BenchCheckOptions {
                baseline: baseline.clone(),
                candidate: candidate.to_path_buf(),
                max_regression: 0.30,
            })
        };
        assert!(check(&ok).is_ok(), "25% down is within a 30% tolerance");
        let err = check(&bad).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn directory_candidate_uses_newest_report() {
        let dir = tmpdir("dir");
        let baseline = report(&dir, "base.json", 1_000_000.0);
        let sub = dir.join("run");
        std::fs::create_dir_all(&sub).unwrap();
        report(&sub, "BENCH_100.json", 100_000.0); // stale, would fail
        report(&sub, "BENCH_200.json", 990_000.0); // newest, passes
        let out = run_bench_check(&BenchCheckOptions {
            baseline,
            candidate: sub,
            max_regression: 0.30,
        })
        .unwrap();
        assert!(out.contains("990000"), "{out}");
    }

    #[test]
    fn missing_inputs_are_reported() {
        let dir = tmpdir("missing");
        let baseline = report(&dir, "base.json", 1_000_000.0);
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let err = run_bench_check(&BenchCheckOptions {
            baseline: baseline.clone(),
            candidate: empty,
            max_regression: 0.30,
        })
        .unwrap_err();
        assert!(err.contains("no BENCH_"), "{err}");

        std::fs::write(dir.join("garbage.json"), "not json").unwrap();
        let err = run_bench_check(&BenchCheckOptions {
            baseline,
            candidate: dir.join("garbage.json"),
            max_regression: 0.30,
        })
        .unwrap_err();
        assert!(err.contains("garbage.json"), "{err}");
    }
}
