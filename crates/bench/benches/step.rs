//! Raw `Cpu::step` throughput and decode-cache path benches.
//!
//! `simulator.rs` times whole-system runs through the run loop; this bench
//! isolates the per-instruction step cost the decode cache optimizes, and
//! times the cache's hit and miss paths directly so a regression in either
//! shows up without being averaged into full-run numbers.

use vax_bench::harness::Bench;
use vax_cpu::icache::DECODE_CACHE_SLOTS;
use vax_cpu::{CpuConfig, DecodeCache};
use vax_mem::{PageTables, PhysAddr, VirtAddr};
use vax_workload::{build_system, Workload};

/// Steps per timed iteration — large enough to amortize the harness, small
/// enough that a few iterations still fit a quick run.
const STEPS: u64 = 10_000;

fn bench_step(b: &mut Bench) {
    // Cached: the shipping configuration.
    let mut sys = build_system(Workload::TimesharingResearch, 3, 7);
    sys.run_instructions(20_000); // warm TB, cache, and decode cache
    b.bench_n("step/decode_cache_on", 20, || sys.run_instructions(STEPS));
    let stats = sys.cpu.decode_cache_stats();
    assert!(stats.hits > 0, "warm run should hit the decode cache");

    // Uncached: the test-oracle configuration; every step re-decodes.
    let mut sys = build_system(Workload::TimesharingResearch, 3, 7);
    sys.cpu.config.decode_cache = false;
    sys.run_instructions(20_000);
    b.bench_n("step/decode_cache_off", 20, || sys.run_instructions(STEPS));
    assert_eq!(sys.cpu.decode_cache_stats().hits, 0);
}

fn bench_icache_paths(b: &mut Bench) {
    let insn = vax_arch::decode(&[0xD0, 0x51, 0x52]).expect("movl r1, r2");
    let tables = PageTables {
        sbr: PhysAddr(0x10000),
        slr: 64,
        p0br: VirtAddr(0x8000_0000),
        p0lr: 16,
        p1br: VirtAddr(0x8000_0200),
        p1lr: 16,
    };

    // Hit path: the same PCs over and over, as a loop body would.
    let mut cache = DecodeCache::new();
    for pc in 0..64u32 {
        cache.lookup(0x200 + pc * 4, 0, &tables);
        cache.insert(0x200 + pc * 4, insn);
    }
    let mut pc = 0u32;
    b.bench("icache/hit", || {
        pc = (pc + 1) & 63;
        cache.lookup(0x200 + pc * 4, 0, &tables)
    });

    // Miss + insert path: a PC stream wider than the cache, so every
    // lookup misses and refills (the cold-loop / conflict case).
    let mut cache = DecodeCache::new();
    let mut va = 0x200u32;
    b.bench("icache/miss_insert", || {
        va = va.wrapping_add(DECODE_CACHE_SLOTS as u32 + 4);
        let out = cache.lookup(va, 0, &tables);
        cache.insert(va, insn);
        out
    });
}

fn bench_config_sanity() {
    // The shipping config has the cache on; keep the bench honest if that
    // ever changes. Read through a runtime value so the check survives the
    // constant becoming configurable.
    let config = CpuConfig::VAX_780;
    assert!(
        config.decode_cache,
        "VAX_780 should enable the decode cache"
    );
}

fn main() {
    let mut b = Bench::from_args();
    bench_config_sanity();
    bench_step(&mut b);
    bench_icache_paths(&mut b);
    b.finish();
}
