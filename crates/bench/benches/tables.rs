//! One bench per paper table: each regenerates its table from a fresh
//! measurement, so `cargo bench` exercises every reproduction path (Table
//! 8's bench is the headline: measure + reduce + render the full timing
//! decomposition).

use vax_analysis::{tables, Analysis};
use vax_bench::harness::Bench;
use vax_workload::{build_system, Workload};

fn measured() -> (vax_cpu::ControlStore, vax780::Measurement) {
    let mut sys = build_system(Workload::TimesharingResearch, 3, 1984);
    let m = sys.measure(5_000, 40_000);
    (sys.cpu.cs.clone(), m)
}

fn main() {
    let mut b = Bench::from_args();
    let (cs, m) = measured();
    let a = Analysis::new(&cs, &m);
    b.bench("tables/table1_opcode_groups", || tables::table1(&a));
    b.bench("tables/table2_pc_changing", || tables::table2(&a));
    b.bench("tables/table3_specifiers", || tables::table3(&a));
    b.bench("tables/table4_modes", || tables::table4(&a));
    b.bench("tables/table5_reads_writes", || tables::table5(&a));
    b.bench("tables/table6_instr_size", || tables::table6(&a));
    b.bench("tables/table7_headway", || tables::table7(&a));
    b.bench("tables/events_section4", || tables::events(&a));
    b.bench("tables/table8_timing", || tables::table8(&a));
    b.bench("tables/table9_per_group", || tables::table9(&a));
    b.bench_n("reduction/histogram_to_analysis", 20, || {
        Analysis::new(&cs, &m)
    });
    b.finish();
}
