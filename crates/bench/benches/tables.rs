//! One bench per paper table: each regenerates its table from a fresh
//! measurement, so `cargo bench` exercises every reproduction path (Table
//! 8's bench is the headline: measure + reduce + render the full timing
//! decomposition).

use criterion::{criterion_group, criterion_main, Criterion};
use vax_analysis::{tables, Analysis};
use vax_workload::{build_system, Workload};

fn measured() -> (vax_cpu::ControlStore, vax780::Measurement) {
    let mut sys = build_system(Workload::TimesharingResearch, 3, 1984);
    let m = sys.measure(5_000, 40_000);
    (sys.cpu.cs.clone(), m)
}

fn bench_tables(c: &mut Criterion) {
    let (cs, m) = measured();
    let a = Analysis::new(&cs, &m);
    let mut g = c.benchmark_group("tables");
    g.bench_function("table1_opcode_groups", |b| b.iter(|| tables::table1(&a)));
    g.bench_function("table2_pc_changing", |b| b.iter(|| tables::table2(&a)));
    g.bench_function("table3_specifiers", |b| b.iter(|| tables::table3(&a)));
    g.bench_function("table4_modes", |b| b.iter(|| tables::table4(&a)));
    g.bench_function("table5_reads_writes", |b| b.iter(|| tables::table5(&a)));
    g.bench_function("table6_instr_size", |b| b.iter(|| tables::table6(&a)));
    g.bench_function("table7_headway", |b| b.iter(|| tables::table7(&a)));
    g.bench_function("events_section4", |b| b.iter(|| tables::events(&a)));
    g.bench_function("table8_timing", |b| b.iter(|| tables::table8(&a)));
    g.bench_function("table9_per_group", |b| b.iter(|| tables::table9(&a)));
    g.finish();

    let mut g2 = c.benchmark_group("reduction");
    g2.sample_size(20);
    g2.bench_function("histogram_to_analysis", |b| {
        b.iter(|| Analysis::new(&cs, &m))
    });
    g2.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
