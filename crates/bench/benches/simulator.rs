//! Criterion benches: simulator component and full-system throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vax_arch::decode;
use vax_mem::{Cache, MemorySystem, PhysAddr, Tb, VirtAddr};
use vax_workload::{build_system, generate_process, Workload, WorkloadProfile};

fn bench_decoder(c: &mut Criterion) {
    let profile = WorkloadProfile::baseline();
    let spec = generate_process(&profile, 99);
    let code = &spec.image.bytes[..0x8000.min(spec.image.bytes.len())];
    let mut g = c.benchmark_group("decoder");
    g.throughput(Throughput::Bytes(code.len() as u64));
    g.bench_function("stream", |b| {
        b.iter(|| {
            let mut at = 0usize;
            let mut n = 0u64;
            while at + 16 < code.len() {
                match decode(&code[at..]) {
                    Ok(insn) => {
                        at += insn.len as usize;
                        n += 1;
                    }
                    Err(_) => at += 1,
                }
            }
            n
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/access_read_stream", |b| {
        let mut cache = Cache::new_780();
        let mut addr = 0u32;
        b.iter(|| {
            addr = addr.wrapping_add(68) & 0x3FFFF;
            cache.access_read(PhysAddr(addr))
        })
    });
    c.bench_function("tb/probe_insert", |b| {
        let mut tb = Tb::new_780();
        let mut va = 0u32;
        b.iter(|| {
            va = va.wrapping_add(512) & 0xFFFFF;
            if tb.probe(VirtAddr(va)).is_none() {
                tb.insert(VirtAddr(va), va >> 9);
            }
        })
    });
    c.bench_function("memsys/read_cycle", |b| {
        let mut ms = MemorySystem::new_780();
        let mut t = 0u64;
        let mut pa = 0u32;
        b.iter(|| {
            pa = pa.wrapping_add(36) & 0xFFFF;
            t += 1;
            ms.read_cycle(PhysAddr(pa), t)
        })
    });
}

fn bench_full_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("system");
    g.sample_size(10);
    for w in [Workload::TimesharingResearch, Workload::SciEng] {
        g.throughput(Throughput::Elements(20_000));
        g.bench_function(format!("run_20k_instr/{:?}", w), |b| {
            let mut sys = build_system(w, 3, 5);
            b.iter(|| sys.run_instructions(20_000))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_decoder, bench_cache, bench_full_system);
criterion_main!(benches);
