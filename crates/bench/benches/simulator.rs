//! Simulator component and full-system throughput benches.
//!
//! Plain `harness = false` binaries timed with [`vax_bench::harness`] (the
//! build environment has no crates.io access, so Criterion is unavailable).

use vax_arch::decode;
use vax_bench::harness::Bench;
use vax_mem::{Cache, MemorySystem, PhysAddr, Tb, VirtAddr};
use vax_workload::{build_system, generate_process, Workload, WorkloadProfile};

fn bench_decoder(b: &mut Bench) {
    let profile = WorkloadProfile::baseline();
    let spec = generate_process(&profile, 99);
    let code = &spec.image.bytes[..0x8000.min(spec.image.bytes.len())];
    b.bench("decoder/stream", || {
        let mut at = 0usize;
        let mut n = 0u64;
        while at + 16 < code.len() {
            match decode(&code[at..]) {
                Ok(insn) => {
                    at += insn.len as usize;
                    n += 1;
                }
                Err(_) => at += 1,
            }
        }
        n
    });
}

fn bench_cache(b: &mut Bench) {
    let mut cache = Cache::new_780();
    let mut addr = 0u32;
    b.bench("cache/access_read_stream", || {
        addr = addr.wrapping_add(68) & 0x3FFFF;
        cache.access_read(PhysAddr(addr))
    });
    let mut tb = Tb::new_780();
    let mut va = 0u32;
    b.bench("tb/probe_insert", || {
        va = va.wrapping_add(512) & 0xFFFFF;
        if tb.probe(VirtAddr(va)).is_none() {
            tb.insert(VirtAddr(va), va >> 9);
        }
    });
    let mut ms = MemorySystem::new_780();
    let mut t = 0u64;
    let mut pa = 0u32;
    b.bench("memsys/read_cycle", || {
        pa = pa.wrapping_add(36) & 0xFFFF;
        t += 1;
        ms.read_cycle(PhysAddr(pa), t)
    });
}

fn bench_full_system(b: &mut Bench) {
    for w in [Workload::TimesharingResearch, Workload::SciEng] {
        let mut sys = build_system(w, 3, 5);
        b.bench_n(&format!("system/run_20k_instr/{w:?}"), 5, || {
            sys.run_instructions(20_000)
        });
    }
}

fn main() {
    let mut b = Bench::from_args();
    bench_decoder(&mut b);
    bench_cache(&mut b);
    bench_full_system(&mut b);
    b.finish();
}
