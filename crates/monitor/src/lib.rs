//! # upc-monitor
//!
//! The paper's instrument: a micro-PC histogram monitor.
//!
//! Emer & Clark built a hardware board with 16,000 addressable count buckets
//! that incremented, at the 780's microcycle rate, a bucket selected by the
//! processor's current micro-PC. The board keeps **two planes** of counters:
//! one for normally-executing microinstructions and one for read-/write-
//! stalled microinstructions, so the *duration* of stalls is measurable even
//! though their cause is not microcode-visible. IB stalls appear in the
//! normal plane as executions of the dedicated "insufficient bytes"
//! dispatch microaddress.
//!
//! This crate models the instrument faithfully:
//!
//! * [`Histogram`] — the count board: 16 K × 2 counters, with the Unibus
//!   device's start/stop/clear/read operations. It is completely passive.
//! * [`ControlStoreMap`] — the *data reduction key*: which µPC ranges belong
//!   to which activity (instruction decode, first-specifier processing,
//!   execute microcode of each opcode group, TB-miss service, …) and what
//!   each microinstruction does (compute, read, write, or wait-for-IB).
//!   The paper's analysts had the real microcode listings; our CPU builds
//!   its synthetic control store through this map, and the analysis crate
//!   reduces histograms against it without ever looking inside the CPU.
//!
//! ```
//! use upc_monitor::{Activity, ControlStoreMap, Histogram, MicroOp, Plane};
//!
//! let mut map = ControlStoreMap::new();
//! let region = map.alloc("IRD", Activity::Decode, &[MicroOp::Compute]);
//! let mut hist = Histogram::new_16k();
//! hist.start();
//! hist.record(region.at(0), Plane::Normal);
//! hist.stop();
//! assert_eq!(hist.read(region.at(0), Plane::Normal), 1);
//! ```

pub mod histogram;
pub mod map;

pub use histogram::{Histogram, Plane};
pub use map::{Activity, ControlStoreMap, CycleClass, MicroOp, MicroPc, Region};

/// Number of histogram buckets on the count board.
pub const BOARD_BUCKETS: usize = 16 * 1024;
