//! The histogram count board.
//!
//! A passive Unibus device: 16 K addressable buckets in two planes (normal /
//! stalled), incremented at the microcycle rate while collection is enabled.
//! The board does not interpret anything — interpretation is the job of the
//! reduction in `vax-analysis`, keyed by the control-store map.

use crate::map::MicroPc;
use crate::BOARD_BUCKETS;

/// Which counter plane an observation lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Plane {
    /// The microinstruction executed normally this cycle.
    Normal,
    /// The microinstruction spent this cycle read- or write-stalled.
    Stalled,
}

/// The micro-PC histogram board.
#[derive(Debug, Clone)]
pub struct Histogram {
    normal: Vec<u64>,
    stalled: Vec<u64>,
    running: bool,
}

impl Histogram {
    /// A board with `buckets` locations per plane, stopped and cleared.
    pub fn new(buckets: usize) -> Histogram {
        Histogram {
            normal: vec![0; buckets],
            stalled: vec![0; buckets],
            running: false,
        }
    }

    /// The real board: 16,000-odd locations (we round to 16 K).
    pub fn new_16k() -> Histogram {
        Histogram::new(BOARD_BUCKETS)
    }

    /// Begin collection (Unibus "start" command).
    pub fn start(&mut self) {
        self.running = true;
    }

    /// End collection (Unibus "stop" command).
    pub fn stop(&mut self) {
        self.running = false;
    }

    /// True while collecting.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Clear all buckets (Unibus "clear" command).
    pub fn clear(&mut self) {
        self.normal.fill(0);
        self.stalled.fill(0);
    }

    /// Record `n` cycles at `upc` in `plane`. No-op while stopped — the
    /// board is passive and never perturbs the machine.
    #[inline]
    pub fn record_n(&mut self, upc: MicroPc, plane: Plane, n: u64) {
        if !self.running {
            return;
        }
        let i = upc.0 as usize;
        match plane {
            Plane::Normal => self.normal[i] += n,
            Plane::Stalled => self.stalled[i] += n,
        }
    }

    /// Record one cycle at `upc` in `plane`.
    #[inline]
    pub fn record(&mut self, upc: MicroPc, plane: Plane) {
        self.record_n(upc, plane, 1);
    }

    /// Read one bucket.
    pub fn read(&self, upc: MicroPc, plane: Plane) -> u64 {
        let i = upc.0 as usize;
        match plane {
            Plane::Normal => self.normal[i],
            Plane::Stalled => self.stalled[i],
        }
    }

    /// Total cycles recorded across both planes (conservation checks).
    pub fn total_cycles(&self) -> u64 {
        self.normal.iter().sum::<u64>() + self.stalled.iter().sum::<u64>()
    }

    /// Total cycles in one plane.
    pub fn plane_total(&self, plane: Plane) -> u64 {
        match plane {
            Plane::Normal => self.normal.iter().sum(),
            Plane::Stalled => self.stalled.iter().sum(),
        }
    }

    /// Merge another histogram's counts into this one — how the paper's
    /// composite workload (the sum of the five experiments' histograms) was
    /// formed.
    ///
    /// # Panics
    /// Panics if the two boards have different bucket counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.normal.len(),
            other.normal.len(),
            "cannot merge histograms of different sizes"
        );
        for (a, b) in self.normal.iter_mut().zip(&other.normal) {
            *a += b;
        }
        for (a, b) in self.stalled.iter_mut().zip(&other.stalled) {
            *a += b;
        }
    }

    /// Bucket-wise `self - earlier` (interval sampling over a cumulative
    /// board). The result is stopped; `running` state is not meaningful on
    /// a derived snapshot.
    ///
    /// # Panics
    /// Panics if the boards differ in size or any bucket of `earlier`
    /// exceeds its value in `self`.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        assert_eq!(
            self.normal.len(),
            earlier.normal.len(),
            "cannot diff histograms of different sizes"
        );
        let sub = |a: &[u64], b: &[u64]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| {
                    x.checked_sub(*y)
                        .expect("Histogram::diff: bucket ran backwards")
                })
                .collect()
        };
        Histogram {
            normal: sub(&self.normal, &earlier.normal),
            stalled: sub(&self.stalled, &earlier.stalled),
            running: false,
        }
    }

    /// Iterate over non-zero buckets as (µPC, plane, count).
    pub fn nonzero(&self) -> impl Iterator<Item = (MicroPc, Plane, u64)> + '_ {
        let normals = self
            .normal
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (MicroPc(i as u16), Plane::Normal, c));
        let stalls = self
            .stalled
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (MicroPc(i as u16), Plane::Stalled, c));
        normals.chain(stalls)
    }
}

impl Default for Histogram {
    /// The real board geometry ([`Histogram::new_16k`]), stopped and clear.
    fn default() -> Histogram {
        Histogram::new_16k()
    }
}

/// Two boards are equal when they recorded the same counts. The transient
/// `running` flag is collection state, not data: a stopped snapshot and a
/// still-armed board with identical buckets compare equal, which is what
/// merge-law reasoning (`a ⊕ b = b ⊕ a`, `∅ ⊕ a = a`) needs.
impl PartialEq for Histogram {
    fn eq(&self, other: &Histogram) -> bool {
        self.normal == other.normal && self.stalled == other.stalled
    }
}

impl Eq for Histogram {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_when_stopped() {
        let mut h = Histogram::new_16k();
        h.record(MicroPc(5), Plane::Normal);
        assert_eq!(h.read(MicroPc(5), Plane::Normal), 0);
        h.start();
        h.record(MicroPc(5), Plane::Normal);
        h.stop();
        h.record(MicroPc(5), Plane::Normal);
        assert_eq!(h.read(MicroPc(5), Plane::Normal), 1);
    }

    #[test]
    fn planes_are_independent() {
        let mut h = Histogram::new_16k();
        h.start();
        h.record_n(MicroPc(7), Plane::Normal, 3);
        h.record_n(MicroPc(7), Plane::Stalled, 11);
        assert_eq!(h.read(MicroPc(7), Plane::Normal), 3);
        assert_eq!(h.read(MicroPc(7), Plane::Stalled), 11);
        assert_eq!(h.total_cycles(), 14);
        assert_eq!(h.plane_total(Plane::Stalled), 11);
    }

    #[test]
    fn clear_zeroes() {
        let mut h = Histogram::new_16k();
        h.start();
        h.record(MicroPc(1), Plane::Normal);
        h.clear();
        assert_eq!(h.total_cycles(), 0);
    }

    #[test]
    fn merge_composites() {
        let mut a = Histogram::new_16k();
        let mut b = Histogram::new_16k();
        a.start();
        b.start();
        a.record_n(MicroPc(3), Plane::Normal, 2);
        b.record_n(MicroPc(3), Plane::Normal, 5);
        b.record_n(MicroPc(4), Plane::Stalled, 1);
        a.merge(&b);
        assert_eq!(a.read(MicroPc(3), Plane::Normal), 7);
        assert_eq!(a.read(MicroPc(4), Plane::Stalled), 1);
    }

    #[test]
    fn equality_ignores_collection_state() {
        let mut a = Histogram::new_16k();
        let mut b = Histogram::new_16k();
        a.start();
        a.record(MicroPc(3), Plane::Normal);
        b.start();
        b.record(MicroPc(3), Plane::Normal);
        b.stop();
        assert_eq!(a, b, "running flag is not data");
        b.record(MicroPc(3), Plane::Stalled); // stopped: no-op
        assert_eq!(a, b);
        a.record(MicroPc(4), Plane::Stalled);
        assert_ne!(a, b);
    }

    #[test]
    fn nonzero_iteration() {
        let mut h = Histogram::new_16k();
        h.start();
        h.record_n(MicroPc(9), Plane::Normal, 4);
        h.record_n(MicroPc(2), Plane::Stalled, 6);
        let items: Vec<_> = h.nonzero().collect();
        assert_eq!(items.len(), 2);
        assert!(items.contains(&(MicroPc(9), Plane::Normal, 4)));
        assert!(items.contains(&(MicroPc(2), Plane::Stalled, 6)));
    }
}
