//! The control-store map: µPC allocation and classification.
//!
//! On the real 780 the microcode listings told the analysts what every
//! control-store location did. Our CPU *builds* its control store through
//! [`ControlStoreMap::alloc`], so the same information is available to the
//! reduction: each address has an [`Activity`] (a row of the paper's
//! Table 8) and a [`MicroOp`] kind (which, combined with the histogram
//! plane, yields the six cycle-class columns).

use std::fmt;

/// A control-store address (µPC), 0..16384.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MicroPc(pub u16);

impl fmt::Display for MicroPc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "µ{:04x}", self.0)
    }
}

/// The activity rows of paper Table 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Activity {
    /// Initial instruction decode (one non-overlapped cycle).
    Decode,
    /// First operand specifier processing.
    Spec1,
    /// Second through sixth specifier processing.
    Spec26,
    /// Branch displacement processing.
    BDisp,
    /// Execute phase, SIMPLE group.
    ExecSimple,
    /// Execute phase, FIELD group.
    ExecField,
    /// Execute phase, FLOAT group.
    ExecFloat,
    /// Execute phase, CALL/RET group.
    ExecCallRet,
    /// Execute phase, SYSTEM group.
    ExecSystem,
    /// Execute phase, CHARACTER group.
    ExecCharacter,
    /// Execute phase, DECIMAL group.
    ExecDecimal,
    /// Interrupt and exception dispatch overhead.
    IntExcept,
    /// Memory management (TB miss service) and unaligned-data microcode.
    MemMgmt,
    /// Abort cycles: one per microtrap and one per microcode patch.
    Abort,
}

impl Activity {
    /// All activities in Table 8 row order.
    pub const ALL: [Activity; 14] = [
        Activity::Decode,
        Activity::Spec1,
        Activity::Spec26,
        Activity::BDisp,
        Activity::ExecSimple,
        Activity::ExecField,
        Activity::ExecFloat,
        Activity::ExecCallRet,
        Activity::ExecSystem,
        Activity::ExecCharacter,
        Activity::ExecDecimal,
        Activity::IntExcept,
        Activity::MemMgmt,
        Activity::Abort,
    ];

    /// Table-8 row label.
    pub const fn name(self) -> &'static str {
        match self {
            Activity::Decode => "Decode",
            Activity::Spec1 => "Spec 1",
            Activity::Spec26 => "Spec 2-6",
            Activity::BDisp => "B-Disp",
            Activity::ExecSimple => "Simple",
            Activity::ExecField => "Field",
            Activity::ExecFloat => "Float",
            Activity::ExecCallRet => "Call/Ret",
            Activity::ExecSystem => "System",
            Activity::ExecCharacter => "Character",
            Activity::ExecDecimal => "Decimal",
            Activity::IntExcept => "Int/Except",
            Activity::MemMgmt => "Mem Mgmt",
            Activity::Abort => "Abort",
        }
    }

    /// Stable dense index in [`Activity::ALL`] order.
    pub fn index(self) -> usize {
        Activity::ALL.iter().position(|a| *a == self).unwrap()
    }
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a microinstruction does, as visible to the interface board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroOp {
    /// Autonomous EBOX operation — no memory reference.
    Compute,
    /// Issues a D-stream read (may read-stall).
    Read,
    /// Issues a D-stream write (may write-stall).
    Write,
    /// The "insufficient bytes in IB" dispatch target; each execution is
    /// one IB-stall cycle.
    IbWait,
}

/// The six mutually exclusive cycle classes — the columns of Table 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CycleClass {
    /// Ordinary microcode computation.
    Compute,
    /// A memory-read microcycle.
    Read,
    /// Cycles stalled waiting for read data.
    ReadStall,
    /// A memory-write microcycle.
    Write,
    /// Cycles stalled waiting for the write buffer.
    WriteStall,
    /// Cycles stalled waiting for instruction bytes.
    IbStall,
}

impl CycleClass {
    /// All classes in Table 8 column order.
    pub const ALL: [CycleClass; 6] = [
        CycleClass::Compute,
        CycleClass::Read,
        CycleClass::ReadStall,
        CycleClass::Write,
        CycleClass::WriteStall,
        CycleClass::IbStall,
    ];

    /// Table-8 column label.
    pub const fn name(self) -> &'static str {
        match self {
            CycleClass::Compute => "Compute",
            CycleClass::Read => "Read",
            CycleClass::ReadStall => "R-Stall",
            CycleClass::Write => "Write",
            CycleClass::WriteStall => "W-Stall",
            CycleClass::IbStall => "IB-Stall",
        }
    }

    /// Stable dense index in column order.
    pub fn index(self) -> usize {
        CycleClass::ALL.iter().position(|c| *c == self).unwrap()
    }
}

impl fmt::Display for CycleClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Classify a histogram observation into a cycle class, exactly as the
/// paper's reduction did: the microinstruction's kind plus the counter
/// plane determine the class.
pub fn classify(op: MicroOp, stalled: bool) -> CycleClass {
    match (op, stalled) {
        (MicroOp::Compute, _) => CycleClass::Compute,
        (MicroOp::Read, false) => CycleClass::Read,
        (MicroOp::Read, true) => CycleClass::ReadStall,
        (MicroOp::Write, false) => CycleClass::Write,
        (MicroOp::Write, true) => CycleClass::WriteStall,
        (MicroOp::IbWait, _) => CycleClass::IbStall,
    }
}

/// One allocated microroutine region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First µPC of the region.
    pub base: MicroPc,
    /// Number of microinstructions.
    pub len: u16,
}

impl Region {
    /// The µPC of the `i`-th microinstruction of the routine.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn at(self, i: u16) -> MicroPc {
        assert!(
            i < self.len,
            "µPC offset {i} out of routine (len {})",
            self.len
        );
        MicroPc(self.base.0 + i)
    }

    /// The entry point (offset 0).
    pub fn entry(self) -> MicroPc {
        self.base
    }
}

/// Per-address control-store information.
#[derive(Debug, Clone)]
struct Slot {
    routine: String,
    activity: Activity,
    op: MicroOp,
}

/// The control-store map: allocation of µPC space to microroutines and the
/// classification key for data reduction.
#[derive(Debug, Clone, Default)]
pub struct ControlStoreMap {
    slots: Vec<Slot>,
}

impl ControlStoreMap {
    /// An empty map.
    pub fn new() -> ControlStoreMap {
        ControlStoreMap { slots: Vec::new() }
    }

    /// Allocate a contiguous region for a microroutine named `name`, with
    /// one entry per microinstruction kind in `ops`.
    ///
    /// # Panics
    /// Panics if the 16 K control store is exhausted or `ops` is empty.
    pub fn alloc(&mut self, name: &str, activity: Activity, ops: &[MicroOp]) -> Region {
        assert!(!ops.is_empty(), "routine {name} must have at least one µop");
        let base = self.slots.len();
        assert!(
            base + ops.len() <= crate::BOARD_BUCKETS,
            "control store exhausted allocating {name}"
        );
        for &op in ops {
            self.slots.push(Slot {
                routine: name.to_string(),
                activity,
                op,
            });
        }
        Region {
            base: MicroPc(base as u16),
            len: ops.len() as u16,
        }
    }

    /// Number of allocated control-store locations.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if nothing is allocated.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The activity of an address.
    ///
    /// # Panics
    /// Panics for an unallocated address.
    pub fn activity(&self, upc: MicroPc) -> Activity {
        self.slots[upc.0 as usize].activity
    }

    /// The microinstruction kind at an address.
    ///
    /// # Panics
    /// Panics for an unallocated address.
    pub fn op(&self, upc: MicroPc) -> MicroOp {
        self.slots[upc.0 as usize].op
    }

    /// The routine name owning an address.
    ///
    /// # Panics
    /// Panics for an unallocated address.
    pub fn routine(&self, upc: MicroPc) -> &str {
        &self.slots[upc.0 as usize].routine
    }

    /// Iterate over all allocated addresses as (µPC, routine, activity, op).
    pub fn iter(&self) -> impl Iterator<Item = (MicroPc, &str, Activity, MicroOp)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (MicroPc(i as u16), s.routine.as_str(), s.activity, s.op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_classify() {
        let mut map = ControlStoreMap::new();
        let r1 = map.alloc(
            "IRD",
            Activity::Decode,
            &[MicroOp::Compute, MicroOp::IbWait],
        );
        let r2 = map.alloc(
            "SPEC.RDISP",
            Activity::Spec1,
            &[MicroOp::Compute, MicroOp::Read],
        );
        assert_eq!(map.len(), 4);
        assert_eq!(map.activity(r1.at(0)), Activity::Decode);
        assert_eq!(map.op(r1.at(1)), MicroOp::IbWait);
        assert_eq!(map.routine(r2.at(1)), "SPEC.RDISP");
        assert_eq!(r2.base.0, 2);
    }

    #[test]
    fn classification_matrix() {
        assert_eq!(classify(MicroOp::Compute, false), CycleClass::Compute);
        assert_eq!(classify(MicroOp::Read, false), CycleClass::Read);
        assert_eq!(classify(MicroOp::Read, true), CycleClass::ReadStall);
        assert_eq!(classify(MicroOp::Write, false), CycleClass::Write);
        assert_eq!(classify(MicroOp::Write, true), CycleClass::WriteStall);
        assert_eq!(classify(MicroOp::IbWait, false), CycleClass::IbStall);
    }

    #[test]
    #[should_panic(expected = "out of routine")]
    fn region_bounds() {
        let mut map = ControlStoreMap::new();
        let r = map.alloc("X", Activity::Decode, &[MicroOp::Compute]);
        let _ = r.at(1);
    }

    #[test]
    fn indices_dense() {
        for (i, a) in Activity::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
        }
        for (i, c) in CycleClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
