//! Memory-system event counters (the implementation events of paper §4).

/// Counts of memory-system events over a measurement interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// D-stream read references (physical, after unaligned doubling).
    pub d_reads: u64,
    /// D-stream read cache misses.
    pub d_read_misses: u64,
    /// D-stream writes.
    pub d_writes: u64,
    /// D-stream writes that hit (and updated) the cache.
    pub d_write_hits: u64,
    /// I-stream (IB) longword references.
    pub i_reads: u64,
    /// I-stream cache misses.
    pub i_read_misses: u64,
    /// TB misses triggered by D-stream references.
    pub tb_miss_d: u64,
    /// TB misses triggered by I-stream references.
    pub tb_miss_i: u64,
    /// References that crossed an aligned-longword boundary (each costs an
    /// extra physical reference).
    pub unaligned_refs: u64,
    /// PTE reads performed by TB-miss service.
    pub pte_reads: u64,
    /// PTE reads that missed the cache.
    pub pte_read_misses: u64,
    /// Total read-stall cycles suffered by the EBOX.
    pub read_stall_cycles: u64,
    /// Total write-stall cycles suffered by the EBOX.
    pub write_stall_cycles: u64,
    /// Injected SBI/memory parity faults latched for machine-check delivery.
    pub parity_faults: u64,
}

impl MemStats {
    /// Zeroed counters.
    pub fn new() -> MemStats {
        MemStats::default()
    }

    /// Reset all counters (monitor `clear`).
    pub fn clear(&mut self) {
        *self = MemStats::default();
    }

    /// Total cache read misses (I + D + PTE).
    pub fn total_read_misses(&self) -> u64 {
        self.d_read_misses + self.i_read_misses + self.pte_read_misses
    }

    /// Total TB misses.
    pub fn total_tb_misses(&self) -> u64 {
        self.tb_miss_d + self.tb_miss_i
    }

    /// Every counter, in declaration order (the single field list shared by
    /// [`MemStats::merge`] and [`MemStats::diff`]).
    fn fields(&self) -> [u64; 14] {
        [
            self.d_reads,
            self.d_read_misses,
            self.d_writes,
            self.d_write_hits,
            self.i_reads,
            self.i_read_misses,
            self.tb_miss_d,
            self.tb_miss_i,
            self.unaligned_refs,
            self.pte_reads,
            self.pte_read_misses,
            self.read_stall_cycles,
            self.write_stall_cycles,
            self.parity_faults,
        ]
    }

    fn fields_mut(&mut self) -> [&mut u64; 14] {
        [
            &mut self.d_reads,
            &mut self.d_read_misses,
            &mut self.d_writes,
            &mut self.d_write_hits,
            &mut self.i_reads,
            &mut self.i_read_misses,
            &mut self.tb_miss_d,
            &mut self.tb_miss_i,
            &mut self.unaligned_refs,
            &mut self.pte_reads,
            &mut self.pte_read_misses,
            &mut self.read_stall_cycles,
            &mut self.write_stall_cycles,
            &mut self.parity_faults,
        ]
    }

    /// Add another counter block (composite workloads).
    pub fn merge(&mut self, other: &MemStats) {
        for (a, b) in self.fields_mut().into_iter().zip(other.fields()) {
            *a += b;
        }
    }

    /// Counter-wise `self - earlier` (interval sampling).
    ///
    /// # Panics
    /// Panics if `earlier` is not a prefix snapshot of `self` (any counter
    /// running backwards indicates mismatched snapshots).
    pub fn diff(&self, earlier: &MemStats) -> MemStats {
        let mut out = *self;
        for (a, b) in out.fields_mut().into_iter().zip(earlier.fields()) {
            *a = a
                .checked_sub(b)
                .expect("MemStats::diff: counter ran backwards");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let stats = MemStats {
            d_read_misses: 3,
            i_read_misses: 4,
            pte_read_misses: 1,
            tb_miss_d: 2,
            tb_miss_i: 5,
            ..MemStats::default()
        };
        assert_eq!(stats.total_read_misses(), 8);
        assert_eq!(stats.total_tb_misses(), 7);
    }

    #[test]
    fn clear_resets() {
        let mut stats = MemStats {
            d_reads: 10,
            ..MemStats::default()
        };
        stats.clear();
        assert_eq!(stats, MemStats::default());
    }
}
