//! Memory-system event counters (the implementation events of paper §4).

/// Counts of memory-system events over a measurement interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// D-stream read references (physical, after unaligned doubling).
    pub d_reads: u64,
    /// D-stream read cache misses.
    pub d_read_misses: u64,
    /// D-stream writes.
    pub d_writes: u64,
    /// D-stream writes that hit (and updated) the cache.
    pub d_write_hits: u64,
    /// I-stream (IB) longword references.
    pub i_reads: u64,
    /// I-stream cache misses.
    pub i_read_misses: u64,
    /// TB misses triggered by D-stream references.
    pub tb_miss_d: u64,
    /// TB misses triggered by I-stream references.
    pub tb_miss_i: u64,
    /// References that crossed an aligned-longword boundary (each costs an
    /// extra physical reference).
    pub unaligned_refs: u64,
    /// PTE reads performed by TB-miss service.
    pub pte_reads: u64,
    /// PTE reads that missed the cache.
    pub pte_read_misses: u64,
    /// Total read-stall cycles suffered by the EBOX.
    pub read_stall_cycles: u64,
    /// Total write-stall cycles suffered by the EBOX.
    pub write_stall_cycles: u64,
}

impl MemStats {
    /// Zeroed counters.
    pub fn new() -> MemStats {
        MemStats::default()
    }

    /// Reset all counters (monitor `clear`).
    pub fn clear(&mut self) {
        *self = MemStats::default();
    }

    /// Total cache read misses (I + D + PTE).
    pub fn total_read_misses(&self) -> u64 {
        self.d_read_misses + self.i_read_misses + self.pte_read_misses
    }

    /// Total TB misses.
    pub fn total_tb_misses(&self) -> u64 {
        self.tb_miss_d + self.tb_miss_i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let stats = MemStats {
            d_read_misses: 3,
            i_read_misses: 4,
            pte_read_misses: 1,
            tb_miss_d: 2,
            tb_miss_i: 5,
            ..MemStats::default()
        };
        assert_eq!(stats.total_read_misses(), 8);
        assert_eq!(stats.total_tb_misses(), 7);
    }

    #[test]
    fn clear_resets() {
        let mut stats = MemStats {
            d_reads: 10,
            ..MemStats::default()
        };
        stats.clear();
        assert_eq!(stats, MemStats::default());
    }
}
