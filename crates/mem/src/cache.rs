//! The data/instruction cache of the VAX-11/780.
//!
//! One unified 8 KB cache serves both the I-Fetch unit and the EBOX: two-way
//! set-associative, 8-byte blocks, write-through with **no write-allocate**
//! (a write miss does not install the block — the paper notes "if the write
//! access misses, the cache is not updated").
//!
//! The cache here is a *tag store only*: data always lives in (and is
//! fetched from) physical memory, because writes are write-through and thus
//! memory is always current. The cache's job in this model is purely timing:
//! deciding hit or miss.

use crate::addr::PhysAddr;

/// Geometry of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Block (line) size in bytes.
    pub block_bytes: usize,
}

impl CacheConfig {
    /// The VAX-11/780 cache: 8 KB, 2-way, 8-byte blocks.
    pub const VAX_780: CacheConfig = CacheConfig {
        size_bytes: 8 * 1024,
        ways: 2,
        block_bytes: 8,
    };

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.block_bytes)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u32,
}

/// The cache tag store.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    block_shift: u32,
    /// `Some((mask, shift))` when `sets` is a power of two: the set index
    /// is `block & mask` and the tag `block >> shift`. Probes run several
    /// times per simulated instruction, and a hardware divide per probe
    /// (the general `%`/`÷` path) is measurable at that rate.
    pow2: Option<(u32, u32)>,
    lines: Vec<Line>,
    victim: Vec<u8>,
}

impl Cache {
    /// Build a cache with the given geometry.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (non-power-of-two block size or
    /// sizes that do not divide evenly).
    pub fn new(config: CacheConfig) -> Cache {
        assert!(
            config.block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(config.ways > 0);
        assert_eq!(config.size_bytes % (config.ways * config.block_bytes), 0);
        let sets = config.sets();
        assert!(sets > 0);
        Cache {
            config,
            sets,
            block_shift: config.block_bytes.trailing_zeros(),
            pow2: sets
                .is_power_of_two()
                .then(|| (sets as u32 - 1, sets.trailing_zeros())),
            lines: vec![Line::default(); sets * config.ways],
            victim: vec![0; sets],
        }
    }

    /// The 780's cache.
    pub fn new_780() -> Cache {
        Cache::new(CacheConfig::VAX_780)
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    #[inline]
    fn set_and_tag(&self, pa: PhysAddr) -> (usize, u32) {
        let block = pa.0 >> self.block_shift;
        match self.pow2 {
            Some((mask, shift)) => ((block & mask) as usize, block >> shift),
            None => ((block as usize) % self.sets, block / self.sets as u32),
        }
    }

    /// Probe for a block. Does not change state.
    pub fn probe(&self, pa: PhysAddr) -> bool {
        let (set, tag) = self.set_and_tag(pa);
        let base = set * self.config.ways;
        self.lines[base..base + self.config.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Read access: returns `true` on hit; on miss, installs the block
    /// (read allocate) and returns `false`.
    pub fn access_read(&mut self, pa: PhysAddr) -> bool {
        let (set, tag) = self.set_and_tag(pa);
        let base = set * self.config.ways;
        let ways = &mut self.lines[base..base + self.config.ways];
        if ways.iter().any(|l| l.valid && l.tag == tag) {
            return true;
        }
        // Fill: invalid way first, else round-robin victim.
        let slot = ways.iter().position(|l| !l.valid).unwrap_or_else(|| {
            let v = &mut self.victim[set];
            let w = *v as usize % self.config.ways;
            *v = v.wrapping_add(1);
            w
        });
        ways[slot] = Line { valid: true, tag };
        false
    }

    /// Write access (write-through, no write-allocate): returns `true` if
    /// the block was present (and thus updated), `false` otherwise. Never
    /// installs a block.
    pub fn access_write(&mut self, pa: PhysAddr) -> bool {
        self.probe(pa)
    }

    /// Invalidate the whole cache.
    pub fn invalidate_all(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }

    /// Number of valid lines (diagnostics).
    pub fn valid_count(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_780() {
        let c = Cache::new_780();
        assert_eq!(c.config().sets(), 512);
    }

    #[test]
    fn read_allocates() {
        let mut c = Cache::new_780();
        let pa = PhysAddr(0x1234);
        assert!(!c.access_read(pa), "first read misses");
        assert!(c.access_read(pa), "second read hits");
        // Same 8-byte block.
        assert!(c.access_read(PhysAddr(0x1230)));
        // Different block.
        assert!(!c.access_read(PhysAddr(0x1238)));
    }

    #[test]
    fn write_does_not_allocate() {
        let mut c = Cache::new_780();
        let pa = PhysAddr(0x2000);
        assert!(!c.access_write(pa));
        assert!(!c.probe(pa), "write miss must not install the block");
        c.access_read(pa);
        assert!(c.access_write(pa), "write after read hits");
    }

    #[test]
    fn conflict_eviction() {
        let mut c = Cache::new_780();
        let sets = c.sets;
        let stride = (sets * c.config.block_bytes) as u32;
        // Three blocks in the same set of a 2-way cache.
        let addrs = [PhysAddr(0), PhysAddr(stride), PhysAddr(2 * stride)];
        for pa in addrs {
            c.access_read(pa);
        }
        let hits = addrs.iter().filter(|&&pa| c.probe(pa)).count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn invalidate() {
        let mut c = Cache::new_780();
        c.access_read(PhysAddr(0x100));
        assert_eq!(c.valid_count(), 1);
        c.invalidate_all();
        assert_eq!(c.valid_count(), 0);
    }

    #[test]
    fn custom_geometry() {
        // Direct-mapped 1 KB cache with 16-byte lines.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            ways: 1,
            block_bytes: 16,
        });
        assert_eq!(c.config().sets(), 64);
        assert!(!c.access_read(PhysAddr(0)));
        assert!(!c.access_read(PhysAddr(1024)), "conflicting block");
        assert!(!c.probe(PhysAddr(0)), "direct-mapped conflict evicted");
    }
}
