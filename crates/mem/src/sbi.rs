//! The Synchronous Backplane Interconnect (SBI) timing model.
//!
//! Every cache read miss and every (write-through) data write crosses the
//! SBI to the memory controllers. The SBI is a single shared resource: a
//! transfer that arrives while another is in flight waits its turn. This is
//! the mechanism that stretches read stalls beyond the 6-cycle simplest
//! case and makes heavy write bursts (CALLS register saves) expensive.

/// SBI timing parameters, in 200 ns cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SbiConfig {
    /// Cycles from read-miss issue to data arrival, uncontended
    /// (the paper's "6 cycles in the simplest case").
    pub read_miss_cycles: u64,
    /// Cycles a write occupies the path to memory, uncontended.
    pub write_cycles: u64,
}

impl SbiConfig {
    /// The 780 values.
    pub const VAX_780: SbiConfig = SbiConfig {
        read_miss_cycles: 6,
        write_cycles: 6,
    };
}

/// The SBI occupancy state.
#[derive(Debug, Clone, Copy)]
pub struct Sbi {
    config: SbiConfig,
    free_at: u64,
}

impl Sbi {
    /// A new idle SBI.
    pub fn new(config: SbiConfig) -> Sbi {
        Sbi { config, free_at: 0 }
    }

    /// The 780's SBI.
    pub fn new_780() -> Sbi {
        Sbi::new(SbiConfig::VAX_780)
    }

    /// The configured parameters.
    pub fn config(&self) -> SbiConfig {
        self.config
    }

    /// Begin a read-miss transfer at cycle `now`; returns the cycle at which
    /// the data arrives.
    pub fn read_miss(&mut self, now: u64) -> u64 {
        let start = self.free_at.max(now);
        let done = start + self.config.read_miss_cycles;
        self.free_at = done;
        done
    }

    /// Begin a write drain at cycle `now`; returns the cycle at which the
    /// write completes in memory.
    pub fn write(&mut self, now: u64) -> u64 {
        let start = self.free_at.max(now);
        let done = start + self.config.write_cycles;
        self.free_at = done;
        done
    }

    /// Cycle at which the SBI next goes idle.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_read() {
        let mut sbi = Sbi::new_780();
        assert_eq!(sbi.read_miss(100), 106);
    }

    #[test]
    fn contention_serializes() {
        let mut sbi = Sbi::new_780();
        assert_eq!(sbi.read_miss(100), 106);
        // A second miss issued at 102 waits for the bus.
        assert_eq!(sbi.read_miss(102), 112);
    }

    #[test]
    fn write_then_read_contend() {
        let mut sbi = Sbi::new_780();
        assert_eq!(sbi.write(10), 16);
        assert_eq!(sbi.read_miss(12), 22);
    }

    #[test]
    fn idle_gap_resets() {
        let mut sbi = Sbi::new_780();
        sbi.write(0);
        assert_eq!(sbi.read_miss(50), 56);
    }
}
