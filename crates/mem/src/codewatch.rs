//! Write-path invalidation hook for the CPU's decoded-instruction cache.
//!
//! The CPU caches `vax_arch::decode` results keyed by virtual PC; the cached
//! decode is only valid while the underlying instruction bytes are
//! unchanged. [`CodeWatch`] tracks, at 16-byte *granule* granularity, which
//! physical memory holds bytes some cached decode depends on. Any store
//! that lands on a watched granule — self-modifying code — bumps the
//! *epoch*; the CPU compares epochs once per step and flushes its cache on
//! mismatch. Page remaps ([`crate::MemorySystem::install_pte`]) and
//! untracked direct physical access ([`crate::MemorySystem::phys_mut`])
//! invalidate unconditionally, since the watch cannot know what they
//! changed.
//!
//! Granularity matters: real memory images mix code and writable data on
//! the same 512-byte page (counters next to handler code, literal pools),
//! and a page-granular watch would treat every such store as self-modifying
//! code. Sixteen-byte granules keep the bitmap small (128 Kbit for 8 MB)
//! while cutting that false sharing to near zero.
//!
//! Invalidation is deliberately conservative (whole-cache flush on any
//! overlap): correctness requires never serving a stale decode; flushing
//! too much only costs re-decodes, which the cache exists to amortize.

use crate::addr::PhysAddr;

/// Log2 of the watch granule size in bytes.
pub const GRANULE_SHIFT: u32 = 4;
/// Watch granule size in bytes.
pub const GRANULE_SIZE: u32 = 1 << GRANULE_SHIFT;

/// Granule-granular watchpoints over physical memory, with a monotonically
/// increasing invalidation epoch.
#[derive(Debug, Clone)]
pub struct CodeWatch {
    /// One bit per [`GRANULE_SIZE`]-byte granule of physical memory.
    granules: Vec<u64>,
    /// Bumped whenever any watched byte may have changed.
    epoch: u64,
    /// Fast path: true while at least one granule bit is set.
    any_watched: bool,
}

impl CodeWatch {
    /// A watch covering `mem_bytes` of physical memory, nothing watched.
    pub fn new(mem_bytes: usize) -> CodeWatch {
        let granules = mem_bytes >> GRANULE_SHIFT;
        CodeWatch {
            granules: vec![0; granules.div_ceil(64).max(1)],
            epoch: 0,
            any_watched: false,
        }
    }

    /// The current invalidation epoch. Consumers cache this value and
    /// compare per step: unchanged epoch ⇒ every watched byte is unchanged.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Watch the granules overlapped by `[pa, pa + len)`.
    pub fn watch(&mut self, pa: PhysAddr, len: u32) {
        if len == 0 {
            return;
        }
        let first = (pa.0 >> GRANULE_SHIFT) as usize;
        let last = (pa.add(len - 1).0 >> GRANULE_SHIFT) as usize;
        for g in first..=last {
            if let Some(word) = self.granules.get_mut(g / 64) {
                *word |= 1 << (g % 64);
                self.any_watched = true;
            }
        }
    }

    /// Note a store of `size` bytes at `pa`. If it overlaps any watched
    /// granule the epoch advances and all watchpoints clear (the consumer
    /// re-registers what it still needs as it repopulates its cache).
    #[inline]
    pub fn note_write(&mut self, pa: PhysAddr, size: u32) {
        if !self.any_watched {
            return;
        }
        let first = (pa.0 >> GRANULE_SHIFT) as usize;
        let last = (pa.add(size.saturating_sub(1)).0 >> GRANULE_SHIFT) as usize;
        for g in first..=last {
            let watched = self
                .granules
                .get(g / 64)
                .is_some_and(|w| w & (1 << (g % 64)) != 0);
            if watched {
                self.invalidate_all();
                return;
            }
        }
    }

    /// Unconditionally advance the epoch and drop every watchpoint (page
    /// remap, direct physical-memory access, anything untrackable).
    pub fn invalidate_all(&mut self) {
        self.epoch += 1;
        if self.any_watched {
            self.granules.iter_mut().for_each(|w| *w = 0);
            self.any_watched = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;

    #[test]
    fn unwatched_writes_do_not_invalidate() {
        let mut w = CodeWatch::new(1 << 20);
        let e0 = w.epoch();
        w.note_write(PhysAddr(0x400), 4);
        assert_eq!(w.epoch(), e0);
    }

    #[test]
    fn write_to_watched_granule_bumps_epoch() {
        let mut w = CodeWatch::new(1 << 20);
        w.watch(PhysAddr(0x1000), 8);
        let e0 = w.epoch();
        // Same granule, different offset: still an overlap.
        w.note_write(PhysAddr(0x100C), 4);
        assert_eq!(w.epoch(), e0 + 1);
        // Watchpoints cleared: the same write no longer invalidates.
        w.note_write(PhysAddr(0x1000), 4);
        assert_eq!(w.epoch(), e0 + 1);
    }

    #[test]
    fn same_page_different_granule_does_not_invalidate() {
        let mut w = CodeWatch::new(1 << 20);
        // Code at the start of a page, a data counter at its end — the
        // situation a page-granular watch would falsely flag as SMC.
        w.watch(PhysAddr(0x1000), 8);
        let e0 = w.epoch();
        w.note_write(PhysAddr(0x11F0), 4);
        assert_eq!(w.epoch(), e0, "write a granule away is not SMC");
    }

    #[test]
    fn watch_and_write_span_boundaries() {
        let mut w = CodeWatch::new(1 << 20);
        // Watch a range whose tail crosses into the next page.
        w.watch(PhysAddr(2 * PAGE_SIZE - 2), 6);
        let e0 = w.epoch();
        w.note_write(PhysAddr(2 * PAGE_SIZE + 2), 1);
        assert_eq!(w.epoch(), e0 + 1, "tail granule of the range is watched");

        w.watch(PhysAddr(5 * PAGE_SIZE), 4);
        let e1 = w.epoch();
        // A write whose tail reaches the watched granule.
        w.note_write(PhysAddr(5 * PAGE_SIZE - 2), 4);
        assert_eq!(w.epoch(), e1 + 1);
    }

    #[test]
    fn invalidate_all_always_advances() {
        let mut w = CodeWatch::new(1 << 20);
        let e0 = w.epoch();
        w.invalidate_all();
        w.invalidate_all();
        assert_eq!(w.epoch(), e0 + 2);
    }

    #[test]
    fn out_of_range_addresses_are_ignored() {
        let mut w = CodeWatch::new(4 * PAGE_SIZE as usize);
        w.watch(PhysAddr(64 * PAGE_SIZE), 4); // beyond physical memory
        let e0 = w.epoch();
        w.note_write(PhysAddr(64 * PAGE_SIZE), 4);
        assert_eq!(w.epoch(), e0);
    }
}
