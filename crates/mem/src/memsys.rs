//! The assembled memory system: TB + cache + write buffer + SBI + memory.
//!
//! This type exposes *small orthogonal operations* (TB probe, TB fill,
//! timed cache read/write, untimed value access) rather than one monolithic
//! `access` call, because on the 780 the orchestration lives in microcode:
//! the EBOX probes the TB, takes a microtrap to fill it, retries the
//! reference, and so on. The CPU crate drives these steps and charges each
//! cycle to the proper µPC bucket.

use crate::addr::{PhysAddr, VirtAddr};
use crate::cache::{Cache, CacheConfig};
use crate::codewatch::CodeWatch;
use crate::pagetable::{PageTables, Pte, PteLocation, TranslateError};
use crate::phys::PhysicalMemory;
use crate::sbi::{Sbi, SbiConfig};
use crate::stats::MemStats;
use crate::tb::{Tb, TbConfig};
use crate::trace::{StallClass, TraceBus, TraceEvent, TraceStream};
use crate::writebuf::WriteBuffer;

/// Which stream a reference belongs to (I-Fetch vs. EBOX data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefClass {
    /// Instruction-buffer fill.
    IStream,
    /// EBOX data reference.
    DStream,
}

/// Full memory-system configuration.
#[derive(Debug, Clone, Copy)]
pub struct MemConfig {
    /// Cache geometry.
    pub cache: CacheConfig,
    /// TB geometry.
    pub tb: TbConfig,
    /// SBI latencies.
    pub sbi: SbiConfig,
    /// Physical memory size in bytes.
    pub mem_bytes: usize,
}

impl MemConfig {
    /// The measured machines: 8 KB cache, 128-entry TB, 8 MB memory.
    pub const VAX_780: MemConfig = MemConfig {
        cache: CacheConfig::VAX_780,
        tb: TbConfig::VAX_780,
        sbi: SbiConfig::VAX_780,
        mem_bytes: 8 << 20,
    };
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::VAX_780
    }
}

/// Outcome of a timed data read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Read-stall cycles suffered by the EBOX (0 on a cache hit).
    pub stall: u64,
    /// Whether the reference missed the cache.
    pub miss: bool,
}

/// Outcome of an IB fill request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// Cycle at which the longword is available to the IB.
    pub avail_at: u64,
    /// Whether the reference missed the cache.
    pub miss: bool,
}

/// Outcome of a TB-miss service walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbFill {
    /// Number of PTE reads performed (1, or 2 if the process PTE's system
    /// page also missed the TB).
    pub pte_reads: u32,
    /// Read-stall cycles incurred fetching PTEs through the cache.
    pub stall: u64,
    /// The translation now installed.
    pub pfn: u32,
}

/// The complete memory subsystem of one simulated 11/780.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    phys: PhysicalMemory,
    cache: Cache,
    tb: Tb,
    sbi: Sbi,
    wb: WriteBuffer,
    /// Current page-table base registers (swapped on context switch).
    pub tables: PageTables,
    /// Event counters.
    pub stats: MemStats,
    /// Observability event bus (shared with the CPU, which owns this memory
    /// system). Detached — and free — unless a sink is attached.
    pub trace: TraceBus,
    /// Write-path watchpoints backing the CPU's decoded-instruction cache.
    code_watch: CodeWatch,
    /// Latched SBI/memory parity fault awaiting machine-check delivery.
    /// Set by fault injection; consumed (and cleared) by the CPU between
    /// instructions, which turns it into a machine-check interrupt.
    parity_latch: bool,
}

impl MemorySystem {
    /// Build from a configuration.
    pub fn new(config: MemConfig) -> MemorySystem {
        MemorySystem {
            phys: PhysicalMemory::new(config.mem_bytes),
            cache: Cache::new(config.cache),
            tb: Tb::new(config.tb),
            sbi: Sbi::new(config.sbi),
            wb: WriteBuffer::new(),
            tables: PageTables::empty(),
            stats: MemStats::new(),
            trace: TraceBus::detached(),
            code_watch: CodeWatch::new(config.mem_bytes),
            parity_latch: false,
        }
    }

    // ---- parity-fault injection ----

    /// Latch a simulated SBI/memory parity fault. The latch stays set until
    /// the CPU consumes it via [`MemorySystem::take_parity_fault`] and
    /// delivers a machine check; injecting while one is already latched is
    /// idempotent (the 780's error-summary registers behave the same way:
    /// a second error before service only sets a lost-error bit).
    pub fn inject_parity_fault(&mut self) {
        if !self.parity_latch {
            self.stats.parity_faults += 1;
        }
        self.parity_latch = true;
    }

    /// Consume a latched parity fault, if any. Returns whether one was
    /// pending; the latch is cleared either way.
    pub fn take_parity_fault(&mut self) -> bool {
        std::mem::take(&mut self.parity_latch)
    }

    /// The paper's machine.
    pub fn new_780() -> MemorySystem {
        MemorySystem::new(MemConfig::VAX_780)
    }

    /// Direct access to physical memory (loaders, kernel builders).
    pub fn phys(&self) -> &PhysicalMemory {
        &self.phys
    }

    /// Mutable access to physical memory.
    ///
    /// This is an untracked escape hatch (loaders, kernel builders), so it
    /// conservatively invalidates every code watchpoint: the caller may
    /// write anything anywhere.
    pub fn phys_mut(&mut self) -> &mut PhysicalMemory {
        self.code_watch.invalidate_all();
        &mut self.phys
    }

    // ---- decoded-instruction-cache invalidation hooks ----

    /// Watch the physical memory holding `[pa, pa + len)`: a later store
    /// overlapping it advances [`MemorySystem::code_epoch`]. The CPU
    /// registers each instruction's bytes here when it caches a decode.
    pub fn watch_code(&mut self, pa: PhysAddr, len: u32) {
        self.code_watch.watch(pa, len);
    }

    /// Epoch of the code watchpoints. While this value is unchanged, no
    /// watched instruction byte has been stored to, no page has been
    /// remapped via [`MemorySystem::install_pte`], and no untracked
    /// [`MemorySystem::phys_mut`] access has occurred.
    #[inline]
    pub fn code_epoch(&self) -> u64 {
        self.code_watch.epoch()
    }

    /// Unconditionally invalidate all code watchpoints (advances the epoch).
    pub fn invalidate_code_watch(&mut self) {
        self.code_watch.invalidate_all();
    }

    /// The translation buffer (e.g. for LDPCTX to flush the process half).
    pub fn tb_mut(&mut self) -> &mut Tb {
        &mut self.tb
    }

    /// The cache (diagnostics and sweep experiments).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    // ---- Translation ----

    /// Probe the TB. `None` means TB miss (counted per `class`).
    pub fn probe_tb(&mut self, va: VirtAddr, class: RefClass) -> Option<PhysAddr> {
        self.probe_tb_at(va, class, 0)
    }

    /// [`MemorySystem::probe_tb`] with a cycle stamp for the trace bus.
    pub fn probe_tb_at(&mut self, va: VirtAddr, class: RefClass, now: u64) -> Option<PhysAddr> {
        match self.tb.probe(va) {
            Some(pfn) => Some(PhysAddr::from_pfn(pfn, va.offset())),
            None => {
                let stream = match class {
                    RefClass::IStream => {
                        self.stats.tb_miss_i += 1;
                        TraceStream::IStream
                    }
                    RefClass::DStream => {
                        self.stats.tb_miss_d += 1;
                        TraceStream::DStream
                    }
                };
                self.trace.emit_with(|| TraceEvent::TbMiss {
                    stream,
                    va: va.0,
                    cycle: now,
                });
                None
            }
        }
    }

    /// Service a TB miss at cycle `now`: walk the page tables, reading PTEs
    /// through the cache (with read stalls), and insert the translation.
    ///
    /// # Errors
    /// Propagates [`TranslateError`] for length violations or invalid PTEs
    /// (the workloads map all their pages up front, so an error here is a
    /// simulation bug, not a page fault to handle).
    pub fn tb_fill(&mut self, va: VirtAddr, now: u64) -> Result<TbFill, TranslateError> {
        let mut pte_reads = 0;
        let mut stall = 0;
        let pte_pa = match self.tables.pte_location(va)? {
            PteLocation::Phys(pa) => pa,
            PteLocation::Virt(sys_va) => {
                // The process PTE lives in system space; translate that.
                let pfn = match self.tb.probe(sys_va) {
                    Some(pfn) => pfn,
                    None => {
                        // Double miss: fetch the system PTE from the
                        // SBR-based table (physical).
                        let sys_pte_pa = match self.tables.pte_location(sys_va)? {
                            PteLocation::Phys(pa) => pa,
                            PteLocation::Virt(_) => unreachable!("system PTEs are physical"),
                        };
                        let (pte, s) = self.read_pte(sys_pte_pa, now + stall);
                        pte_reads += 1;
                        stall += s;
                        if !pte.is_valid() {
                            return Err(TranslateError::LengthViolation(sys_va));
                        }
                        self.tb.insert(sys_va, pte.pfn());
                        pte.pfn()
                    }
                };
                PhysAddr::from_pfn(pfn, sys_va.offset())
            }
        };
        let (pte, s) = self.read_pte(pte_pa, now + stall);
        pte_reads += 1;
        stall += s;
        if !pte.is_valid() {
            return Err(TranslateError::LengthViolation(va));
        }
        self.tb.insert(va, pte.pfn());
        Ok(TbFill {
            pte_reads,
            stall,
            pfn: pte.pfn(),
        })
    }

    fn read_pte(&mut self, pa: PhysAddr, now: u64) -> (Pte, u64) {
        self.stats.pte_reads += 1;
        let hit = self.cache.access_read(pa);
        let stall = if hit {
            0
        } else {
            self.stats.pte_read_misses += 1;
            self.trace.emit_with(|| TraceEvent::CacheMiss {
                stream: TraceStream::PteFetch,
                pa: pa.0,
                cycle: now,
            });
            let done = self.sbi.read_miss(now);
            done - now
        };
        self.note_read_stall(now, stall);
        (Pte(self.phys.read(pa, 4) as u32), stall)
    }

    /// Account a read stall and emit its begin/end pair.
    fn note_read_stall(&mut self, now: u64, stall: u64) {
        self.stats.read_stall_cycles += stall;
        if stall > 0 {
            self.trace.emit_with(|| TraceEvent::StallBegin {
                class: StallClass::Read,
                cycle: now,
            });
            self.trace.emit_with(|| TraceEvent::StallEnd {
                class: StallClass::Read,
                cycle: now + stall,
                cycles: stall,
            });
        }
    }

    /// [`MemorySystem::raw_translate`], additionally registering the PTE
    /// bytes consulted along the walk as code watchpoints. The decode-cache
    /// fill path translates through this so that a later guest store into
    /// page-table memory — remapping cached code without touching its
    /// bytes — advances [`MemorySystem::code_epoch`] like any other write
    /// under cached code.
    ///
    /// # Errors
    /// [`TranslateError`] as for [`MemorySystem::raw_translate`].
    pub fn raw_translate_watched(&mut self, va: VirtAddr) -> Result<PhysAddr, TranslateError> {
        let pte_pa = match self.tables.pte_location(va)? {
            PteLocation::Phys(pa) => pa,
            PteLocation::Virt(sys_va) => {
                let sys_pte_pa = match self.tables.pte_location(sys_va)? {
                    PteLocation::Phys(pa) => pa,
                    PteLocation::Virt(_) => unreachable!("system PTEs are physical"),
                };
                self.code_watch.watch(sys_pte_pa, 4);
                let sys_pte = Pte(self.phys.read(sys_pte_pa, 4) as u32);
                if !sys_pte.is_valid() {
                    return Err(TranslateError::LengthViolation(sys_va));
                }
                PhysAddr::from_pfn(sys_pte.pfn(), sys_va.offset())
            }
        };
        self.code_watch.watch(pte_pa, 4);
        let pte = Pte(self.phys.read(pte_pa, 4) as u32);
        if !pte.is_valid() {
            return Err(TranslateError::LengthViolation(va));
        }
        Ok(PhysAddr::from_pfn(pte.pfn(), va.offset()))
    }

    /// Untimed full walk (loaders and diagnostics; touches nothing).
    ///
    /// # Errors
    /// [`TranslateError`] on a length violation, reserved region, or invalid
    /// PTE along the walk.
    pub fn raw_translate(&self, va: VirtAddr) -> Result<PhysAddr, TranslateError> {
        let pte_pa = match self.tables.pte_location(va)? {
            PteLocation::Phys(pa) => pa,
            PteLocation::Virt(sys_va) => {
                let sys_pte_pa = match self.tables.pte_location(sys_va)? {
                    PteLocation::Phys(pa) => pa,
                    PteLocation::Virt(_) => unreachable!("system PTEs are physical"),
                };
                let sys_pte = Pte(self.phys.read(sys_pte_pa, 4) as u32);
                if !sys_pte.is_valid() {
                    return Err(TranslateError::LengthViolation(sys_va));
                }
                PhysAddr::from_pfn(sys_pte.pfn(), sys_va.offset())
            }
        };
        let pte = Pte(self.phys.read(pte_pa, 4) as u32);
        if !pte.is_valid() {
            return Err(TranslateError::LengthViolation(va));
        }
        Ok(PhysAddr::from_pfn(pte.pfn(), va.offset()))
    }

    // ---- Timed data access (EBOX) ----

    /// One D-stream read reference of up to 4 bytes that does not cross an
    /// aligned-longword boundary. Returns stall cycles and hit/miss.
    pub fn read_cycle(&mut self, pa: PhysAddr, now: u64) -> ReadOutcome {
        self.stats.d_reads += 1;
        let hit = self.cache.access_read(pa);
        let stall = if hit {
            0
        } else {
            self.stats.d_read_misses += 1;
            self.trace.emit_with(|| TraceEvent::CacheMiss {
                stream: TraceStream::DStream,
                pa: pa.0,
                cycle: now,
            });
            let done = self.sbi.read_miss(now);
            done - now
        };
        self.note_read_stall(now, stall);
        ReadOutcome { stall, miss: !hit }
    }

    /// One D-stream write reference. Write-through: data goes to memory via
    /// the write buffer; the cache is updated only on a hit. Returns
    /// write-stall cycles.
    pub fn write_cycle(&mut self, pa: PhysAddr, now: u64) -> u64 {
        self.stats.d_writes += 1;
        if self.cache.access_write(pa) {
            self.stats.d_write_hits += 1;
        }
        // The buffered write drains over the SBI.
        let drain = self.sbi.config().write_cycles;
        let stall = self.wb.issue(now, drain);
        // Reserve the SBI for the drain window so concurrent read misses
        // queue behind it.
        self.sbi.write(now + stall);
        self.stats.write_stall_cycles += stall;
        if stall > 0 {
            self.trace.emit_with(|| TraceEvent::StallBegin {
                class: StallClass::Write,
                cycle: now,
            });
            self.trace.emit_with(|| TraceEvent::StallEnd {
                class: StallClass::Write,
                cycle: now + stall,
                cycles: stall,
            });
        }
        stall
    }

    /// An IB longword fill request at cycle `now`. Does not stall the EBOX;
    /// returns when the data arrives.
    pub fn ifetch_cycle(&mut self, pa: PhysAddr, now: u64) -> FillOutcome {
        self.stats.i_reads += 1;
        let hit = self.cache.access_read(pa);
        if hit {
            FillOutcome {
                avail_at: now + 1,
                miss: false,
            }
        } else {
            self.stats.i_read_misses += 1;
            self.trace.emit_with(|| TraceEvent::CacheMiss {
                stream: TraceStream::IStream,
                pa: pa.0,
                cycle: now,
            });
            let done = self.sbi.read_miss(now);
            FillOutcome {
                avail_at: done,
                miss: true,
            }
        }
    }

    // ---- Untimed value plumbing ----

    /// Read a value from physical memory without touching timing state.
    pub fn value_read(&self, pa: PhysAddr, size: u32) -> u64 {
        self.phys.read(pa, size)
    }

    /// Write a value to physical memory without touching timing state.
    /// Stores overlapping a watched code page advance the code epoch
    /// (self-modifying code detection).
    pub fn value_write(&mut self, pa: PhysAddr, size: u32, v: u64) {
        self.code_watch.note_write(pa, size);
        self.phys.write(pa, size, v);
    }

    /// Record an unaligned reference (the extra physical access is charged
    /// by the CPU's alignment microcode).
    pub fn note_unaligned(&mut self) {
        self.stats.unaligned_refs += 1;
    }

    /// Write a PTE for `va` into the page tables (used by system builders
    /// while constructing address spaces; untimed).
    ///
    /// # Panics
    /// Panics if the page tables do not cover `va`.
    pub fn install_pte(&mut self, va: VirtAddr, pte: Pte) {
        let loc = self
            .tables
            .pte_location(va)
            .expect("install_pte: page tables do not cover address");
        let pa = match loc {
            PteLocation::Phys(pa) => pa,
            PteLocation::Virt(sys_va) => self
                .raw_translate(sys_va)
                .expect("install_pte: page-table page not mapped"),
        };
        self.phys.write(pa, 4, pte.0 as u64);
        // A remap changes what any virtual PC names; cached decodes of
        // affected addresses must not survive it.
        self.code_watch.invalidate_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;

    /// Build a system with a simple address space: system pages 0..64 map
    /// to physical 0x40000+, P0 pages 0..16 mapped via a table in system
    /// page 0.
    fn system() -> MemorySystem {
        let mut ms = MemorySystem::new_780();
        ms.tables = PageTables {
            sbr: PhysAddr(0x10000),
            slr: 64,
            p0br: VirtAddr(0x8000_0000), // system page 0 holds P0 page table
            p0lr: 16,
            p1br: VirtAddr(0x8000_0200),
            p1lr: 16,
        };
        // System pages are mapped 1:1 to 0x40000+.
        for vpn in 0..64u32 {
            let pfn = (0x40000 >> 9) + vpn;
            ms.phys
                .write(PhysAddr(0x10000 + vpn * 4), 4, Pte::valid(pfn).0 as u64);
        }
        // P0 pages map to physical 0x80000+.
        for vpn in 0..16u32 {
            let pfn = (0x80000 >> 9) + vpn;
            // P0 table lives at system VA 0x8000_0000 == phys 0x40000.
            ms.phys
                .write(PhysAddr(0x40000 + vpn * 4), 4, Pte::valid(pfn).0 as u64);
        }
        ms
    }

    #[test]
    fn raw_translate_system_and_process() {
        let ms = system();
        assert_eq!(
            ms.raw_translate(VirtAddr(0x8000_0004)).unwrap(),
            PhysAddr(0x40004)
        );
        assert_eq!(
            ms.raw_translate(VirtAddr(0x0000_0204)).unwrap(),
            PhysAddr(0x80204)
        );
    }

    #[test]
    fn tb_miss_then_hit() {
        let mut ms = system();
        let va = VirtAddr(0x200);
        assert!(ms.probe_tb(va, RefClass::DStream).is_none());
        assert_eq!(ms.stats.tb_miss_d, 1);
        let fill = ms.tb_fill(va, 0).unwrap();
        assert!(fill.pte_reads >= 1);
        let pa = ms.probe_tb(va, RefClass::DStream).unwrap();
        assert_eq!(pa, PhysAddr(0x80200));
    }

    #[test]
    fn process_fill_may_double_miss() {
        let mut ms = system();
        // First process-page fill also misses on the system page holding
        // the P0 table: two PTE reads.
        let fill = ms.tb_fill(VirtAddr(0x200), 0).unwrap();
        assert_eq!(fill.pte_reads, 2);
        // Second fill to a different P0 page reuses the system translation.
        let fill2 = ms.tb_fill(VirtAddr(0x400), 100).unwrap();
        assert_eq!(fill2.pte_reads, 1);
    }

    #[test]
    fn read_cycle_miss_then_hit() {
        let mut ms = system();
        let pa = PhysAddr(0x80200);
        let r1 = ms.read_cycle(pa, 10);
        assert!(r1.miss);
        assert_eq!(r1.stall, 6);
        let r2 = ms.read_cycle(pa, 20);
        assert!(!r2.miss);
        assert_eq!(r2.stall, 0);
        assert_eq!(ms.stats.d_reads, 2);
        assert_eq!(ms.stats.d_read_misses, 1);
    }

    #[test]
    fn write_cycle_stalls_when_buffer_busy() {
        let mut ms = system();
        assert_eq!(ms.write_cycle(PhysAddr(0x80200), 10), 0);
        let stall = ms.write_cycle(PhysAddr(0x80204), 12);
        assert!(stall > 0, "back-to-back write must stall");
        assert_eq!(ms.stats.d_writes, 2);
        assert_eq!(ms.stats.write_stall_cycles, stall);
    }

    #[test]
    fn write_through_updates_memory_not_cache() {
        let mut ms = system();
        let pa = PhysAddr(0x80300);
        ms.write_cycle(pa, 0);
        ms.value_write(pa, 4, 77);
        assert!(!ms.cache().probe(pa), "write miss does not allocate");
        assert_eq!(ms.value_read(pa, 4), 77);
    }

    #[test]
    fn ifetch_timing() {
        let mut ms = system();
        let pa = PhysAddr(0x80000);
        let f1 = ms.ifetch_cycle(pa, 10);
        assert!(f1.miss);
        assert_eq!(f1.avail_at, 16);
        let f2 = ms.ifetch_cycle(pa, 20);
        assert!(!f2.miss);
        assert_eq!(f2.avail_at, 21);
    }

    #[test]
    fn install_pte_and_translate() {
        let mut ms = system();
        ms.install_pte(VirtAddr(10 * PAGE_SIZE), Pte::valid(0x700));
        assert_eq!(
            ms.raw_translate(VirtAddr(10 * PAGE_SIZE + 4)).unwrap(),
            PhysAddr::from_pfn(0x700, 4)
        );
    }
}
