//! Flat physical memory store.

use crate::addr::PhysAddr;

/// Byte-addressable physical memory.
///
/// The measured machines all had 8 MB; [`PhysicalMemory::new_780`] gives that
/// configuration.
#[derive(Debug, Clone)]
pub struct PhysicalMemory {
    bytes: Vec<u8>,
}

impl PhysicalMemory {
    /// Memory of `size` bytes, zero-filled.
    pub fn new(size: usize) -> PhysicalMemory {
        PhysicalMemory {
            bytes: vec![0; size],
        }
    }

    /// The paper's machine configuration: 8 megabytes.
    pub fn new_780() -> PhysicalMemory {
        PhysicalMemory::new(8 << 20)
    }

    /// Total size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    #[inline]
    fn idx(&self, pa: PhysAddr) -> usize {
        let i = pa.0 as usize;
        assert!(
            i < self.bytes.len(),
            "physical address {pa} out of range (memory is {} bytes)",
            self.bytes.len()
        );
        i
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&self, pa: PhysAddr) -> u8 {
        self.bytes[self.idx(pa)]
    }

    /// Write one byte.
    #[inline]
    pub fn write_u8(&mut self, pa: PhysAddr, v: u8) {
        let i = self.idx(pa);
        self.bytes[i] = v;
    }

    /// Read `size` (1–8) bytes little-endian. The access may span pages;
    /// physical memory is flat so that is fine.
    pub fn read(&self, pa: PhysAddr, size: u32) -> u64 {
        debug_assert!((1..=8).contains(&size));
        let mut buf = [0u8; 8];
        let i = self.idx(pa);
        let end = i + size as usize;
        assert!(end <= self.bytes.len(), "read spans end of memory");
        buf[..size as usize].copy_from_slice(&self.bytes[i..end]);
        u64::from_le_bytes(buf)
    }

    /// Write the low `size` (1–8) bytes of `v` little-endian.
    pub fn write(&mut self, pa: PhysAddr, size: u32, v: u64) {
        debug_assert!((1..=8).contains(&size));
        let i = self.idx(pa);
        let end = i + size as usize;
        assert!(end <= self.bytes.len(), "write spans end of memory");
        self.bytes[i..end].copy_from_slice(&v.to_le_bytes()[..size as usize]);
    }

    /// Copy a slice into memory at `pa` (used by loaders).
    pub fn load(&mut self, pa: PhysAddr, data: &[u8]) {
        let i = self.idx(pa);
        let end = i + data.len();
        assert!(end <= self.bytes.len(), "load spans end of memory");
        self.bytes[i..end].copy_from_slice(data);
    }

    /// Borrow a region of memory (used by instruction fetch).
    pub fn slice(&self, pa: PhysAddr, len: usize) -> &[u8] {
        let i = self.idx(pa);
        assert!(i + len <= self.bytes.len(), "slice spans end of memory");
        &self.bytes[i..i + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut mem = PhysicalMemory::new(4096);
        mem.write(PhysAddr(100), 4, 0xDEADBEEF);
        assert_eq!(mem.read(PhysAddr(100), 4), 0xDEADBEEF);
        assert_eq!(mem.read(PhysAddr(100), 1), 0xEF);
        assert_eq!(mem.read(PhysAddr(102), 2), 0xDEAD);
    }

    #[test]
    fn quadword() {
        let mut mem = PhysicalMemory::new(4096);
        mem.write(PhysAddr(8), 8, 0x0123_4567_89AB_CDEF);
        assert_eq!(mem.read(PhysAddr(8), 8), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn load_and_slice() {
        let mut mem = PhysicalMemory::new(4096);
        mem.load(PhysAddr(0x10), &[1, 2, 3, 4]);
        assert_eq!(mem.slice(PhysAddr(0x10), 4), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_panics() {
        let mem = PhysicalMemory::new(64);
        let _ = mem.read_u8(PhysAddr(64));
    }

    #[test]
    fn default_size() {
        assert_eq!(PhysicalMemory::new_780().size(), 8 << 20);
    }
}
