//! The one-longword write buffer.
//!
//! The 780 write-through scheme sends every data write to memory over the
//! SBI, but a 4-byte buffer lets the EBOX continue after one cycle. If a
//! second write is issued before the first completes (6 cycles in the
//! simplest case), the EBOX takes a *write stall* until the buffer frees.

/// The write buffer's timing state.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteBuffer {
    /// Cycle at which the buffered write will have drained to memory.
    busy_until: u64,
}

impl WriteBuffer {
    /// An empty buffer.
    pub fn new() -> WriteBuffer {
        WriteBuffer::default()
    }

    /// Issue a write at cycle `now`; the drain occupies the buffer until
    /// `drain_done`. Returns the number of *write-stall* cycles suffered
    /// before the write could be accepted.
    pub fn issue(&mut self, now: u64, drain_time: u64) -> u64 {
        let stall = self.busy_until.saturating_sub(now);
        let accept = now + stall;
        self.busy_until = accept + drain_time;
        stall
    }

    /// Cycle at which the buffer next frees.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// True if a write issued at `now` would stall.
    pub fn would_stall(&self, now: u64) -> bool {
        self.busy_until > now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_stall_when_idle() {
        let mut wb = WriteBuffer::new();
        assert_eq!(wb.issue(100, 6), 0);
        assert_eq!(wb.busy_until(), 106);
    }

    #[test]
    fn back_to_back_writes_stall() {
        let mut wb = WriteBuffer::new();
        wb.issue(100, 6);
        // Second write 2 cycles later must wait 4.
        assert_eq!(wb.issue(102, 6), 4);
        assert_eq!(wb.busy_until(), 112);
    }

    #[test]
    fn spaced_writes_do_not_stall() {
        let mut wb = WriteBuffer::new();
        wb.issue(100, 6);
        assert!(!wb.would_stall(106));
        assert_eq!(wb.issue(106, 6), 0);
    }

    #[test]
    fn every_sixth_cycle_is_free() {
        // The paper notes string microcode writes only every 6th cycle to
        // avoid write stalls entirely.
        let mut wb = WriteBuffer::new();
        let mut total = 0;
        for i in 0..10 {
            total += wb.issue(i * 6, 6);
        }
        assert_eq!(total, 0);
    }
}
