//! VAX page-table entries and the page-table base registers.
//!
//! The VAX maps 512-byte pages through per-region page tables. The system
//! region's table lives in *physical* memory (base register SBR); the two
//! process regions' tables live in *system virtual* memory (base registers
//! P0BR/P1BR), so servicing a process-page TB miss may itself require a
//! system-space translation — faithfully modelled here because the paper's
//! 21.6-cycle average TB-miss service time includes exactly such PTE
//! fetches.
//!
//! Simplification vs. the real VAX: the P1 region is indexed from its base
//! like P0 (the real architecture indexes P1 tables from the *end* of the
//! region). This does not affect any measured statistic; it only changes
//! where PTEs sit.

use crate::addr::{PhysAddr, Region, VirtAddr};
use std::fmt;

/// A page-table entry: valid bit (bit 31) + page frame number (low 21 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte(pub u32);

impl Pte {
    /// A valid PTE mapping `pfn`.
    pub const fn valid(pfn: u32) -> Pte {
        Pte(0x8000_0000 | (pfn & 0x001F_FFFF))
    }

    /// An invalid (unmapped) PTE.
    pub const fn invalid() -> Pte {
        Pte(0)
    }

    /// The valid bit.
    pub const fn is_valid(self) -> bool {
        self.0 & 0x8000_0000 != 0
    }

    /// The page frame number.
    pub const fn pfn(self) -> u32 {
        self.0 & 0x001F_FFFF
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "PTE[pfn={:#x}]", self.pfn())
        } else {
            f.write_str("PTE[invalid]")
        }
    }
}

/// Where the PTE for a virtual address lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PteLocation {
    /// System-region PTEs are at a physical address (SBR-based).
    Phys(PhysAddr),
    /// Process-region PTEs are at a system virtual address (PxBR-based).
    Virt(VirtAddr),
}

/// Errors locating a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateError {
    /// The page number exceeds the region's length register.
    LengthViolation(VirtAddr),
    /// The address is in the reserved region.
    ReservedRegion(VirtAddr),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::LengthViolation(va) => write!(f, "length violation at {va}"),
            TranslateError::ReservedRegion(va) => write!(f, "reserved region access at {va}"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// The page-table base/length register set of one process context plus the
/// system region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTables {
    /// System page-table physical base.
    pub sbr: PhysAddr,
    /// System page-table length (pages).
    pub slr: u32,
    /// P0 page-table system-virtual base.
    pub p0br: VirtAddr,
    /// P0 length (pages).
    pub p0lr: u32,
    /// P1 page-table system-virtual base.
    pub p1br: VirtAddr,
    /// P1 length (pages).
    pub p1lr: u32,
}

impl PageTables {
    /// An empty register set (every access is a length violation).
    pub const fn empty() -> PageTables {
        PageTables {
            sbr: PhysAddr(0),
            slr: 0,
            p0br: VirtAddr(0),
            p0lr: 0,
            p1br: VirtAddr(0),
            p1lr: 0,
        }
    }

    /// Locate the PTE that maps `va`.
    ///
    /// # Errors
    /// [`TranslateError::LengthViolation`] if the page is beyond the region's
    /// length register; [`TranslateError::ReservedRegion`] for region 3.
    pub fn pte_location(&self, va: VirtAddr) -> Result<PteLocation, TranslateError> {
        let vpn = va.region_vpn();
        match va.region() {
            Region::P0 => {
                if vpn >= self.p0lr {
                    return Err(TranslateError::LengthViolation(va));
                }
                Ok(PteLocation::Virt(self.p0br.add(vpn * 4)))
            }
            Region::P1 => {
                if vpn >= self.p1lr {
                    return Err(TranslateError::LengthViolation(va));
                }
                Ok(PteLocation::Virt(self.p1br.add(vpn * 4)))
            }
            Region::S0 => {
                if vpn >= self.slr {
                    return Err(TranslateError::LengthViolation(va));
                }
                Ok(PteLocation::Phys(self.sbr.add(vpn * 4)))
            }
            Region::Reserved => Err(TranslateError::ReservedRegion(va)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pte_bits() {
        let pte = Pte::valid(0x1234);
        assert!(pte.is_valid());
        assert_eq!(pte.pfn(), 0x1234);
        assert!(!Pte::invalid().is_valid());
    }

    fn tables() -> PageTables {
        PageTables {
            sbr: PhysAddr(0x10000),
            slr: 256,
            p0br: VirtAddr(0x8000_2000),
            p0lr: 128,
            p1br: VirtAddr(0x8000_4000),
            p1lr: 64,
        }
    }

    #[test]
    fn locate_system_pte() {
        let pt = tables();
        // System page 3 -> SBR + 12, physical.
        let va = VirtAddr(0x8000_0000 + 3 * 512);
        assert_eq!(
            pt.pte_location(va),
            Ok(PteLocation::Phys(PhysAddr(0x10000 + 12)))
        );
    }

    #[test]
    fn locate_process_pte() {
        let pt = tables();
        let va = VirtAddr(5 * 512 + 17);
        assert_eq!(
            pt.pte_location(va),
            Ok(PteLocation::Virt(VirtAddr(0x8000_2000 + 20)))
        );
        let va1 = VirtAddr(0x4000_0000 + 2 * 512);
        assert_eq!(
            pt.pte_location(va1),
            Ok(PteLocation::Virt(VirtAddr(0x8000_4000 + 8)))
        );
    }

    #[test]
    fn violations() {
        let pt = tables();
        assert!(matches!(
            pt.pte_location(VirtAddr(200 * 512)),
            Err(TranslateError::LengthViolation(_))
        ));
        assert!(matches!(
            pt.pte_location(VirtAddr(0xC000_0000)),
            Err(TranslateError::ReservedRegion(_))
        ));
    }
}
