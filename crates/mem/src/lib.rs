//! # vax-mem
//!
//! The VAX-11/780 memory subsystem, modelled at the fidelity the paper's
//! timing decomposition requires:
//!
//! * **Physical memory** — a flat 8 MB store (the configuration of the
//!   measured machines).
//! * **Page tables & translation buffer** — 512-byte VAX pages, P0/P1/S0
//!   regions, and the 780's 128-entry two-way TB split into system and
//!   process halves. A TB miss is *not* serviced here: it is reported to the
//!   CPU, whose microcode trap routine performs the PTE fetch (through the
//!   cache, where it may stall) and inserts the translation — exactly the
//!   microcode-visible behaviour the µPC histogram technique relies on.
//! * **Data cache** — 8 KB, two-way set-associative, 8-byte blocks,
//!   write-through with no write-allocate (writes that miss do not update
//!   the cache).
//! * **Write buffer** — one longword; a write completes 6 cycles after
//!   issue, and a second write inside that window stalls the EBOX (the
//!   paper's *write stall*).
//! * **SBI** — the Synchronous Backplane Interconnect, modelled as a single
//!   shared resource with a 6-cycle read-miss service time (the paper's
//!   simplest-case *read stall*).
//!
//! All latencies are in units of the 780's 200 ns microcycle.

pub mod addr;
pub mod cache;
pub mod codewatch;
pub mod memsys;
pub mod pagetable;
pub mod phys;
pub mod sbi;
pub mod stats;
pub mod tb;
pub mod trace;
pub mod writebuf;

pub use addr::{PhysAddr, Region, VirtAddr, PAGE_SIZE};
pub use cache::{Cache, CacheConfig};
pub use codewatch::CodeWatch;
pub use memsys::{MemConfig, MemorySystem, RefClass};
pub use pagetable::{PageTables, Pte};
pub use phys::PhysicalMemory;
pub use stats::MemStats;
pub use tb::{Tb, TbConfig};
pub use trace::{
    NullSink, RecordingSink, StallClass, TraceBus, TraceEvent, TraceSink, TraceStream,
};
pub use writebuf::WriteBuffer;
