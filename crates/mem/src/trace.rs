//! The trace bus: typed observability events from the simulated machine.
//!
//! The bus lives in `vax-mem` (the bottom of the crate stack) so both the
//! memory system and the CPU can emit through one channel: the CPU owns the
//! [`MemorySystem`](crate::MemorySystem), which owns the bus. Events carry
//! only primitive payloads (opcodes as raw `u16` plus a `&'static str`
//! mnemonic) because this crate sits below `vax-arch` and must not know the
//! instruction set.
//!
//! Tracing is off by default and costs nearly nothing when off: emission
//! sites call [`TraceBus::emit_with`] with a closure, which is skipped
//! entirely — payload construction included — unless a sink is attached.
//! The simulator's hot loop therefore pays one predictable branch per event
//! site, which the optimizer folds into the surrounding code.

use std::cell::RefCell;
use std::rc::Rc;

/// Which reference stream an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceStream {
    /// Instruction fetch (IB fill).
    IStream,
    /// EBOX data reference.
    DStream,
    /// Microcode PTE fetch during TB-miss service.
    PteFetch,
}

/// Why the EBOX is stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallClass {
    /// Cache read miss: EBOX waits for the SBI.
    Read,
    /// Write-buffer conflict: a second write inside the drain window.
    Write,
    /// IB starvation: decode needs bytes the IB does not have.
    IbEmpty,
}

/// One typed event on the trace bus.
///
/// Cycle numbers are the CPU's microcycle counter (200 ns units) at the
/// point of emission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// An instruction retired.
    Retire {
        /// PC of the retired instruction.
        pc: u32,
        /// Raw opcode byte(s).
        opcode: u16,
        /// Mnemonic (from the opcode table).
        mnemonic: &'static str,
        /// Encoded instruction length in bytes.
        size: u32,
        /// Cycle at retirement.
        cycle: u64,
    },
    /// The EBOX began stalling.
    StallBegin {
        /// Stall class.
        class: StallClass,
        /// First stalled cycle.
        cycle: u64,
    },
    /// The EBOX stopped stalling.
    StallEnd {
        /// Stall class.
        class: StallClass,
        /// First cycle after the stall.
        cycle: u64,
        /// Stall length in cycles.
        cycles: u64,
    },
    /// A reference missed the cache.
    CacheMiss {
        /// Which stream missed.
        stream: TraceStream,
        /// Physical address of the miss.
        pa: u32,
        /// Cycle of the reference.
        cycle: u64,
    },
    /// A reference missed the translation buffer.
    TbMiss {
        /// Which stream missed.
        stream: TraceStream,
        /// Virtual address of the miss.
        va: u32,
        /// Cycle of the probe.
        cycle: u64,
    },
    /// An interrupt was dispatched.
    Interrupt {
        /// Interrupt priority level being raised to.
        ipl: u8,
        /// True for hardware (device/timer), false for software.
        hardware: bool,
        /// Cycle at dispatch.
        cycle: u64,
    },
    /// A context switch (LDPCTX) occurred.
    ContextSwitch {
        /// Cycle of the switch.
        cycle: u64,
    },
    /// An exception was taken (BPT, CHMx, fatal simulation error).
    Exception {
        /// PC at the exception.
        pc: u32,
        /// Short exception kind name ("bpt", "chmk", "page-fault", ...).
        kind: &'static str,
        /// Cycle of the exception.
        cycle: u64,
    },
}

impl TraceEvent {
    /// Cycle stamp of the event.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Retire { cycle, .. }
            | TraceEvent::StallBegin { cycle, .. }
            | TraceEvent::StallEnd { cycle, .. }
            | TraceEvent::CacheMiss { cycle, .. }
            | TraceEvent::TbMiss { cycle, .. }
            | TraceEvent::Interrupt { cycle, .. }
            | TraceEvent::ContextSwitch { cycle }
            | TraceEvent::Exception { cycle, .. } => cycle,
        }
    }

    /// Short kind name, for counting and display.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Retire { .. } => "retire",
            TraceEvent::StallBegin { .. } => "stall-begin",
            TraceEvent::StallEnd { .. } => "stall-end",
            TraceEvent::CacheMiss { .. } => "cache-miss",
            TraceEvent::TbMiss { .. } => "tb-miss",
            TraceEvent::Interrupt { .. } => "interrupt",
            TraceEvent::ContextSwitch { .. } => "context-switch",
            TraceEvent::Exception { .. } => "exception",
        }
    }
}

/// A consumer of trace events.
pub trait TraceSink {
    /// Receive one event. Called synchronously from the emission site.
    fn event(&mut self, ev: &TraceEvent);
}

/// A sink that discards everything (useful as an explicit placeholder).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&mut self, _ev: &TraceEvent) {}
}

/// A sink that records every event in order (tests, small traces).
#[derive(Debug, Default)]
pub struct RecordingSink {
    /// Every event received, in emission order.
    pub events: Vec<TraceEvent>,
}

impl RecordingSink {
    /// New empty recorder.
    pub fn new() -> RecordingSink {
        RecordingSink::default()
    }

    /// Shared handle suitable for [`TraceBus::attach`].
    pub fn shared() -> Rc<RefCell<RecordingSink>> {
        Rc::new(RefCell::new(RecordingSink::new()))
    }

    /// Number of events whose [`TraceEvent::kind`] equals `kind`.
    pub fn count(&self, kind: &str) -> u64 {
        self.events.iter().filter(|e| e.kind() == kind).count() as u64
    }
}

impl TraceSink for RecordingSink {
    fn event(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

/// The event bus: an optional shared sink behind an `enabled` fast-path
/// flag.
///
/// Cloning a bus yields a *detached* bus (no sink): simulation state is
/// `Clone` so experiments can snapshot a machine, but a cloned machine must
/// not alias the original's trace consumer.
#[derive(Debug, Default)]
pub struct TraceBus {
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
}

impl Clone for TraceBus {
    fn clone(&self) -> TraceBus {
        TraceBus::detached()
    }
}

impl std::fmt::Debug for dyn TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceSink")
    }
}

impl TraceBus {
    /// A bus with no sink attached (tracing off).
    pub fn detached() -> TraceBus {
        TraceBus { sink: None }
    }

    /// Attach a sink; subsequent events flow to it.
    pub fn attach(&mut self, sink: Rc<RefCell<dyn TraceSink>>) {
        self.sink = Some(sink);
    }

    /// Detach the sink; tracing reverts to free.
    pub fn detach(&mut self) {
        self.sink = None;
    }

    /// Whether a sink is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emit the event produced by `f`, if and only if a sink is attached.
    /// The closure runs only when tracing is on, so payload construction is
    /// free in the off state.
    #[inline]
    pub fn emit_with(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().event(&f());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_bus_never_runs_closure() {
        let bus = TraceBus::detached();
        let mut ran = false;
        bus.emit_with(|| {
            ran = true;
            TraceEvent::ContextSwitch { cycle: 0 }
        });
        assert!(!ran);
        assert!(!bus.is_enabled());
    }

    #[test]
    fn attached_bus_delivers_in_order() {
        let mut bus = TraceBus::detached();
        let rec = RecordingSink::shared();
        bus.attach(rec.clone());
        assert!(bus.is_enabled());
        bus.emit_with(|| TraceEvent::ContextSwitch { cycle: 3 });
        bus.emit_with(|| TraceEvent::Interrupt {
            ipl: 22,
            hardware: true,
            cycle: 9,
        });
        let rec = rec.borrow();
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[0].cycle(), 3);
        assert_eq!(rec.count("interrupt"), 1);
    }

    #[test]
    fn clone_is_detached() {
        let mut bus = TraceBus::detached();
        bus.attach(RecordingSink::shared());
        let copy = bus.clone();
        assert!(bus.is_enabled());
        assert!(!copy.is_enabled());
    }
}
