//! The translation buffer (TB).
//!
//! The 780's TB holds 128 entries, two-way set-associative, partitioned into
//! a *system* half and a *process* half so that a context switch need only
//! flush the process half (the paper's Table 7 context-switch headway is
//! what makes this partition worthwhile; see also Clark & Emer's companion
//! TB study).

use crate::addr::VirtAddr;

/// Geometry of the translation buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbConfig {
    /// Total entries (both halves).
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Partition into system/process halves.
    pub split: bool,
}

impl TbConfig {
    /// The VAX-11/780 configuration: 128 entries, 2-way, split halves.
    pub const VAX_780: TbConfig = TbConfig {
        entries: 128,
        ways: 2,
        split: true,
    };

    fn sets_per_half(&self) -> usize {
        let halves = if self.split { 2 } else { 1 };
        self.entries / self.ways / halves
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TbEntry {
    valid: bool,
    tag: u32, // full VPN
    pfn: u32,
}

/// The translation buffer.
#[derive(Debug, Clone)]
pub struct Tb {
    config: TbConfig,
    sets_per_half: usize,
    /// `sets_per_half - 1` when it is a power of two (the 780's geometry):
    /// lets the per-probe set index be a mask instead of a hardware
    /// divide, which matters at several probes per simulated instruction.
    set_mask: Option<u32>,
    /// `[half][set][way]`, flattened.
    entries: Vec<TbEntry>,
    /// Round-robin victim pointer per (half, set).
    victim: Vec<u8>,
}

impl Tb {
    /// Build a TB with the given geometry.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (entries not divisible by
    /// ways × halves, or zero-sized).
    pub fn new(config: TbConfig) -> Tb {
        let halves = if config.split { 2 } else { 1 };
        assert!(config.entries > 0 && config.ways > 0);
        assert_eq!(
            config.entries % (config.ways * halves),
            0,
            "TB geometry must divide evenly"
        );
        let sets_per_half = config.sets_per_half();
        Tb {
            config,
            sets_per_half,
            set_mask: sets_per_half
                .is_power_of_two()
                .then(|| sets_per_half as u32 - 1),
            entries: vec![TbEntry::default(); config.entries],
            victim: vec![0; sets_per_half * halves],
        }
    }

    /// The 780's TB.
    pub fn new_780() -> Tb {
        Tb::new(TbConfig::VAX_780)
    }

    /// The configured geometry.
    pub fn config(&self) -> TbConfig {
        self.config
    }

    #[inline]
    fn half(&self, va: VirtAddr) -> usize {
        if self.config.split && va.is_system() {
            1
        } else {
            0
        }
    }

    #[inline]
    fn set_index(&self, va: VirtAddr) -> usize {
        match self.set_mask {
            Some(mask) => (va.vpn() & mask) as usize,
            None => (va.vpn() as usize) % self.sets_per_half,
        }
    }

    #[inline]
    fn base(&self, half: usize, set: usize) -> usize {
        (half * self.sets_per_half + set) * self.config.ways
    }

    /// Look up a translation. Returns the PFN on a hit.
    pub fn probe(&self, va: VirtAddr) -> Option<u32> {
        let half = self.half(va);
        let set = self.set_index(va);
        let base = self.base(half, set);
        let tag = va.vpn();
        self.entries[base..base + self.config.ways]
            .iter()
            .find(|e| e.valid && e.tag == tag)
            .map(|e| e.pfn)
    }

    /// Insert a translation (called by the CPU's TB-miss microroutine).
    pub fn insert(&mut self, va: VirtAddr, pfn: u32) {
        let half = self.half(va);
        let set = self.set_index(va);
        let base = self.base(half, set);
        let tag = va.vpn();
        // Replace an existing entry for the same tag, else an invalid way,
        // else the round-robin victim.
        let ways = &mut self.entries[base..base + self.config.ways];
        let slot = ways
            .iter()
            .position(|e| e.valid && e.tag == tag)
            .or_else(|| ways.iter().position(|e| !e.valid))
            .unwrap_or_else(|| {
                let v = &mut self.victim[half * self.sets_per_half + set];
                let w = *v as usize % self.config.ways;
                *v = v.wrapping_add(1);
                w
            });
        ways[slot] = TbEntry {
            valid: true,
            tag,
            pfn,
        };
    }

    /// Invalidate a single page's translation (TBIS).
    pub fn invalidate_page(&mut self, va: VirtAddr) {
        let half = self.half(va);
        let set = self.set_index(va);
        let base = self.base(half, set);
        let tag = va.vpn();
        for e in &mut self.entries[base..base + self.config.ways] {
            if e.valid && e.tag == tag {
                e.valid = false;
            }
        }
    }

    /// Flush the process half (done by LDPCTX on a context switch).
    pub fn invalidate_process(&mut self) {
        let end = if self.config.split {
            self.sets_per_half * self.config.ways
        } else {
            self.entries.len()
        };
        for e in &mut self.entries[..end] {
            e.valid = false;
        }
    }

    /// Flush everything (TBIA).
    pub fn invalidate_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }

    /// Number of currently valid entries (diagnostics).
    pub fn valid_count(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_insert() {
        let mut tb = Tb::new_780();
        let va = VirtAddr(0x1000);
        assert_eq!(tb.probe(va), None);
        tb.insert(va, 0x42);
        assert_eq!(tb.probe(va), Some(0x42));
        // Same page different offset still hits.
        assert_eq!(tb.probe(VirtAddr(0x11FF)), Some(0x42));
        // Next page misses.
        assert_eq!(tb.probe(VirtAddr(0x1200)), None);
    }

    #[test]
    fn process_flush_spares_system() {
        let mut tb = Tb::new_780();
        tb.insert(VirtAddr(0x1000), 1);
        tb.insert(VirtAddr(0x8000_1000), 2);
        tb.invalidate_process();
        assert_eq!(tb.probe(VirtAddr(0x1000)), None);
        assert_eq!(tb.probe(VirtAddr(0x8000_1000)), Some(2));
    }

    #[test]
    fn full_flush() {
        let mut tb = Tb::new_780();
        tb.insert(VirtAddr(0x1000), 1);
        tb.insert(VirtAddr(0x8000_1000), 2);
        tb.invalidate_all();
        assert_eq!(tb.valid_count(), 0);
    }

    #[test]
    fn conflict_eviction() {
        let mut tb = Tb::new_780();
        let sets = tb.sets_per_half;
        // Three pages mapping to the same set in a 2-way TB: one must go.
        let conflicting: Vec<VirtAddr> = (0..3).map(|i| VirtAddr((i * sets as u32) << 9)).collect();
        for (i, &va) in conflicting.iter().enumerate() {
            tb.insert(va, i as u32);
        }
        let hits = conflicting
            .iter()
            .filter(|&&va| tb.probe(va).is_some())
            .count();
        assert_eq!(hits, 2, "two-way set keeps exactly two of three");
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut tb = Tb::new_780();
        tb.insert(VirtAddr(0x1000), 1);
        tb.insert(VirtAddr(0x1000), 9);
        assert_eq!(tb.probe(VirtAddr(0x1000)), Some(9));
        assert_eq!(tb.valid_count(), 1);
    }

    #[test]
    fn invalidate_single_page() {
        let mut tb = Tb::new_780();
        tb.insert(VirtAddr(0x1000), 1);
        tb.insert(VirtAddr(0x3000), 3);
        tb.invalidate_page(VirtAddr(0x1000));
        assert_eq!(tb.probe(VirtAddr(0x1000)), None);
        assert_eq!(tb.probe(VirtAddr(0x3000)), Some(3));
    }

    #[test]
    fn unsplit_geometry() {
        let mut tb = Tb::new(TbConfig {
            entries: 64,
            ways: 2,
            split: false,
        });
        tb.insert(VirtAddr(0x8000_1000), 5);
        tb.invalidate_process(); // flushes everything when unsplit
        assert_eq!(tb.probe(VirtAddr(0x8000_1000)), None);
    }
}
