//! Virtual and physical address newtypes and the VAX address-space map.

use std::fmt;

/// VAX page size in bytes (small by design: 512 bytes).
pub const PAGE_SIZE: u32 = 512;

/// Bits of byte offset within a page.
pub const PAGE_SHIFT: u32 = 9;

/// The VAX virtual address regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Program region, `0x0000_0000 ..= 0x3FFF_FFFF`, grows up.
    P0,
    /// Control (stack) region, `0x4000_0000 ..= 0x7FFF_FFFF`, grows down.
    P1,
    /// System region, `0x8000_0000 ..= 0xBFFF_FFFF`.
    S0,
    /// Reserved region, `0xC000_0000 ..`.
    Reserved,
}

/// A 32-bit virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VirtAddr(pub u32);

impl VirtAddr {
    /// The virtual page number (region bits included).
    #[inline]
    pub const fn vpn(self) -> u32 {
        self.0 >> PAGE_SHIFT
    }

    /// Byte offset within the page.
    #[inline]
    pub const fn offset(self) -> u32 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// The region this address belongs to.
    #[inline]
    pub const fn region(self) -> Region {
        match self.0 >> 30 {
            0 => Region::P0,
            1 => Region::P1,
            2 => Region::S0,
            _ => Region::Reserved,
        }
    }

    /// Page number *within* the region (the index into that region's page
    /// table).
    #[inline]
    pub const fn region_vpn(self) -> u32 {
        (self.0 & 0x3FFF_FFFF) >> PAGE_SHIFT
    }

    /// True if this address lies in system space.
    #[inline]
    pub const fn is_system(self) -> bool {
        matches!(self.region(), Region::S0 | Region::Reserved)
    }

    /// Address advanced by `n` bytes (wrapping).
    #[inline]
    pub const fn add(self, n: u32) -> VirtAddr {
        VirtAddr(self.0.wrapping_add(n))
    }

    /// Bytes from this address to the end of its containing `block`-aligned
    /// unit: how much one reference can take before crossing into the next
    /// block. `block` must be a power of two. The decoder's page-crossing
    /// refill uses `remaining_in(PAGE_SIZE)`; the I-Fetch unit's longword
    /// gulps use `remaining_in(4)` — one helper for both so the address
    /// math cannot drift apart.
    #[inline]
    pub const fn remaining_in(self, block: u32) -> u32 {
        block - (self.0 & (block - 1))
    }

    /// True if an access of `size` bytes at this address crosses an aligned
    /// longword boundary (requiring two physical references on the 780).
    #[inline]
    pub const fn is_unaligned(self, size: u32) -> bool {
        if size >= 4 {
            self.0 & 3 != 0
        } else {
            (self.0 & 3) + size > 4
        }
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl From<u32> for VirtAddr {
    fn from(v: u32) -> Self {
        VirtAddr(v)
    }
}

/// A 30-bit physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhysAddr(pub u32);

impl PhysAddr {
    /// Compose from page frame number and offset.
    #[inline]
    pub const fn from_pfn(pfn: u32, offset: u32) -> PhysAddr {
        PhysAddr((pfn << PAGE_SHIFT) | (offset & (PAGE_SIZE - 1)))
    }

    /// The page frame number.
    #[inline]
    pub const fn pfn(self) -> u32 {
        self.0 >> PAGE_SHIFT
    }

    /// Address advanced by `n` bytes.
    #[inline]
    pub const fn add(self, n: u32) -> PhysAddr {
        PhysAddr(self.0.wrapping_add(n))
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions() {
        assert_eq!(VirtAddr(0x0000_1000).region(), Region::P0);
        assert_eq!(VirtAddr(0x4000_1000).region(), Region::P1);
        assert_eq!(VirtAddr(0x8000_1000).region(), Region::S0);
        assert_eq!(VirtAddr(0xC000_0000).region(), Region::Reserved);
        assert!(VirtAddr(0x8000_0000).is_system());
        assert!(!VirtAddr(0x7FFF_FFFF).is_system());
    }

    #[test]
    fn vpn_offset() {
        let va = VirtAddr(0x4000_0A34);
        assert_eq!(va.offset(), 0x34); // offset within 512B page
        assert_eq!(va.offset(), 0x0234 & 0x1FF);
        assert_eq!(va.vpn(), 0x4000_0A34 >> 9);
        assert_eq!(va.region_vpn(), 0x0000_0A34 >> 9);
    }

    #[test]
    fn alignment() {
        assert!(!VirtAddr(0x1000).is_unaligned(4));
        assert!(VirtAddr(0x1001).is_unaligned(4));
        assert!(!VirtAddr(0x1001).is_unaligned(1));
        assert!(!VirtAddr(0x1002).is_unaligned(2));
        assert!(VirtAddr(0x1003).is_unaligned(2));
        assert!(VirtAddr(0x1006).is_unaligned(4));
    }

    #[test]
    fn phys_compose() {
        let pa = PhysAddr::from_pfn(0x123, 0x45);
        assert_eq!(pa.pfn(), 0x123);
        assert_eq!(pa.0, (0x123 << 9) | 0x45);
    }
}
