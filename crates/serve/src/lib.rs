//! # vax-serve
//!
//! Dependency-free HTTP/1.1 message primitives for the `reproduce serve`
//! daemon: request parsing and response serialization over any
//! `Read`/`Write` pair (in practice a `std::net::TcpStream`).
//!
//! This is deliberately a *message* library, not a framework — no thread
//! pool, no router, no TLS. The daemon (`vax_bench::serve`) owns the
//! listener, the connection loop, and the job registry; this crate owns
//! the wire format, so it can be tested exhaustively against hostile
//! input without opening a socket.
//!
//! Scope and limits (all deliberate for a loopback control plane):
//!
//! * one request per connection (`Connection: close` semantics — the
//!   daemon serves artifacts, not web pages; connection reuse buys
//!   nothing on loopback and costs keep-alive bookkeeping);
//! * bodies require `Content-Length` (no chunked *requests*; responses
//!   may stream by omitting the length and closing, which HTTP/1.1
//!   permits — used by the events endpoint);
//! * hard caps on header block and body size, so a malicious or confused
//!   client cannot balloon daemon memory.

use std::io::{self, Read, Write};

/// Largest accepted request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body, bytes. Job specs are small; the only
/// sizable payload is an inline refute model, well under this.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parse/IO failure while reading a request, tagged with the HTTP
/// status the server should answer with.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request — answer 400 with the message.
    BadRequest(String),
    /// Head or body exceeded the caps — answer 413.
    TooLarge(String),
    /// The peer vanished or the socket failed; nothing to answer.
    Io(io::Error),
    /// Clean EOF before any byte of a request (peer closed an idle
    /// connection); nothing to answer.
    Closed,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge(m) => write!(f, "too large: {m}"),
            HttpError::Io(e) => write!(f, "io: {e}"),
            HttpError::Closed => write!(f, "connection closed"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// A parsed HTTP/1.1 request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …) as sent.
    pub method: String,
    /// The request target, percent-decoding *not* applied (job IDs and
    /// artifact names are plain ASCII; anything else 404s naturally).
    pub target: String,
    /// Header name/value pairs in arrival order, names as sent.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// Read and parse one request from `stream`.
    ///
    /// # Errors
    /// [`HttpError::Closed`] on clean EOF before the first byte,
    /// [`HttpError::BadRequest`] / [`HttpError::TooLarge`] on malformed
    /// or oversized input, [`HttpError::Io`] on socket failure.
    pub fn read(stream: &mut impl Read) -> Result<Request, HttpError> {
        let head = read_head(stream)?;
        let head_text = std::str::from_utf8(&head)
            .map_err(|_| HttpError::BadRequest("request head is not UTF-8".to_string()))?;
        let mut lines = head_text.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if parts.next().is_none() && !m.is_empty() => {
                (m.to_string(), t.to_string(), v)
            }
            _ => {
                return Err(HttpError::BadRequest(format!(
                    "malformed request line: '{request_line}'"
                )))
            }
        };
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(HttpError::BadRequest(format!(
                "unsupported protocol version '{version}'"
            )));
        }
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::BadRequest(format!("malformed header line: '{line}'")))?;
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::BadRequest(format!(
                    "malformed header name: '{name}'"
                )));
            }
            headers.push((name.to_string(), value.trim().to_string()));
        }
        let mut req = Request {
            method,
            target,
            headers,
            body: Vec::new(),
        };
        if let Some(te) = req.header("transfer-encoding") {
            return Err(HttpError::BadRequest(format!(
                "transfer-encoding '{te}' is not supported; send Content-Length"
            )));
        }
        if let Some(raw) = req.header("content-length") {
            let len: usize = raw
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("invalid Content-Length: '{raw}'")))?;
            if len > MAX_BODY_BYTES {
                return Err(HttpError::TooLarge(format!(
                    "body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
                )));
            }
            let mut body = vec![0u8; len];
            stream.read_exact(&mut body).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    HttpError::BadRequest(format!(
                        "body truncated: Content-Length said {len} bytes"
                    ))
                } else {
                    HttpError::Io(e)
                }
            })?;
            req.body = body;
        }
        Ok(req)
    }

    /// First value of a header, matched case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The target split into non-empty `/`-separated segments, query
    /// string (anything from `?`) stripped.
    pub fn path_segments(&self) -> Vec<&str> {
        let path = self.target.split('?').next().unwrap_or("");
        path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Read until the `\r\n\r\n` head terminator, capped at
/// [`MAX_HEAD_BYTES`]. Byte-at-a-time is fine here: the daemon wraps the
/// socket in a `BufReader`, and heads are a few hundred bytes.
fn read_head(stream: &mut impl Read) -> Result<Vec<u8>, HttpError> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(if head.is_empty() {
                    HttpError::Closed
                } else {
                    HttpError::BadRequest("request truncated mid-head".to_string())
                });
            }
            Ok(_) => {
                head.push(byte[0]);
                if head.len() > MAX_HEAD_BYTES {
                    return Err(HttpError::TooLarge(format!(
                        "request head exceeds the {MAX_HEAD_BYTES}-byte cap"
                    )));
                }
                if head.ends_with(b"\r\n\r\n") {
                    head.truncate(head.len() - 4);
                    return Ok(head);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// The standard reason phrase for the status codes the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// An HTTP/1.1 response to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (reason phrase is derived via [`reason`]).
    pub status: u16,
    /// Extra headers beyond `Content-Length` and `Connection: close`,
    /// which [`Response::write`] always emits.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A bodyless response.
    pub fn empty(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `application/json` response.
    pub fn json(status: u16, body: &str) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".to_string(), "application/json".to_string())],
            body: body.as_bytes().to_vec(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            headers: vec![(
                "Content-Type".to_string(),
                "text/plain; charset=utf-8".to_string(),
            )],
            body: body.as_bytes().to_vec(),
        }
    }

    /// Add a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serialize the complete response (with `Content-Length` and
    /// `Connection: close`).
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn write(&self, w: &mut impl Write) -> io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status));
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str("Connection: close\r\n\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Write only a response head with *no* `Content-Length` — the caller
/// streams the body and closes the connection to delimit it (HTTP/1.1
/// close-delimited framing). Used by the job events endpoint.
///
/// # Errors
/// Propagates socket write failures.
pub fn write_streaming_head(w: &mut impl Write, status: u16, content_type: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n",
        status,
        reason(status)
    );
    w.write_all(head.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        Request::read(&mut &bytes[..])
    }

    #[test]
    fn parses_a_get_request() {
        let req =
            parse(b"GET /jobs/j-1/artifacts?x=1 HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path_segments(), vec!["jobs", "j-1", "artifacts"]);
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("HOST"), Some("localhost"), "case-insensitive");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{})(").unwrap();
        assert_eq!(req.body, b"{})(");
    }

    #[test]
    fn rejects_truncated_head_and_body() {
        assert!(matches!(
            parse(b"GET /jobs HTTP/1.1\r\nHost: x"),
            Err(HttpError::BadRequest(_))
        ));
        let err = parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\n{}").unwrap_err();
        assert!(matches!(err, HttpError::BadRequest(ref m) if m.contains("truncated")));
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            &b"GET /x HTTP/1.1 extra\r\n\r\n"[..],
            &b"GET /x SMTP/1.0\r\n\r\n"[..],
            &b"\xff\xfe /x HTTP/1.1\r\n\r\n"[..],
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::BadRequest(_))),
                "{raw:?} must be a 400"
            );
        }
    }

    #[test]
    fn rejects_bad_lengths_and_encodings() {
        assert!(matches!(
            parse(b"POST /jobs HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"),
            Err(HttpError::TooLarge(_))
        ));
        assert!(matches!(
            parse(b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn clean_eof_is_closed_not_an_error_message() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn caps_the_head_size() {
        let mut raw = b"GET /jobs HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert!(matches!(parse(&raw), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn serializes_a_response() {
        let mut out = Vec::new();
        Response::json(202, "{\"id\":\"j-1\"}")
            .with_header("Location", "/jobs/j-1")
            .write(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Location: /jobs/j-1\r\n"));
        assert!(text.contains("Content-Length: 12\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"id\":\"j-1\"}"), "{text}");
    }

    #[test]
    fn streaming_head_has_no_length() {
        let mut out = Vec::new();
        write_streaming_head(&mut out, 200, "application/x-ndjson").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("Content-Length"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
    }
}
