//! Randomized robustness test for the HTTP request parser: random
//! truncations, splices, byte flips, and duplications of valid requests
//! must never panic `Request::read` — every outcome is either a parsed
//! request or a typed [`HttpError`].
//!
//! The generator is a seeded SplitMix64, so a failure prints the seed
//! and iteration needed to replay it deterministically.

use std::panic::{catch_unwind, AssertUnwindSafe};

use vax_serve::Request;

/// SplitMix64: tiny, seedable, good enough to drive mutations.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A pool of well-formed requests to mutate from.
fn valid_requests() -> Vec<Vec<u8>> {
    let body = r#"{"kind": "run", "instructions": 2000, "seed": 42}"#;
    vec![
        format!(
            "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes(),
        b"GET /jobs HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(),
        b"GET /jobs/j-000001/artifacts/manifest.json HTTP/1.1\r\nAccept: */*\r\n\r\n".to_vec(),
        b"POST /shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n".to_vec(),
        b"GET /healthz HTTP/1.1\r\nX-Filler: aaaaaaaaaaaaaaaaaaaaaaaa\r\n\r\n".to_vec(),
    ]
}

/// One random mutation of `bytes`.
fn mutate(rng: &mut Rng, bytes: &mut Vec<u8>) {
    match rng.below(5) {
        // Truncate anywhere.
        0 => {
            let at = rng.below(bytes.len() + 1);
            bytes.truncate(at);
        }
        // Flip one byte to an arbitrary value.
        1 => {
            if !bytes.is_empty() {
                let at = rng.below(bytes.len());
                bytes[at] = (rng.next() & 0xff) as u8;
            }
        }
        // Insert a random byte (NULs, CRs, and high bytes included).
        2 => {
            let at = rng.below(bytes.len() + 1);
            bytes.insert(at, (rng.next() & 0xff) as u8);
        }
        // Duplicate a random slice (repeated headers, doubled CRLFs).
        3 => {
            if !bytes.is_empty() {
                let start = rng.below(bytes.len());
                let len = rng.below(bytes.len() - start) + 1;
                let slice: Vec<u8> = bytes[start..start + len].to_vec();
                let at = rng.below(bytes.len() + 1);
                bytes.splice(at..at, slice);
            }
        }
        // Splice in a fragment of another valid request.
        _ => {
            let pool = valid_requests();
            let other = &pool[rng.below(pool.len())];
            let start = rng.below(other.len());
            let len = rng.below(other.len() - start) + 1;
            let at = rng.below(bytes.len() + 1);
            bytes.splice(at..at, other[start..start + len].iter().copied());
        }
    }
}

#[test]
fn mutated_requests_never_panic_the_parser() {
    // Fixed seed: deterministic in CI, and 2000 iterations × up to 4
    // stacked mutations covers a lot of malformed shapes.
    let seed = 0x1984_0b0b_u64;
    let mut rng = Rng(seed);
    for iteration in 0..2000 {
        let pool = valid_requests();
        let mut bytes = pool[rng.below(pool.len())].clone();
        for _ in 0..(1 + rng.below(4)) {
            mutate(&mut rng, &mut bytes);
        }
        let input = bytes.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut reader: &[u8] = &input;
            // The result itself is irrelevant; only that it IS a result.
            let _ = Request::read(&mut reader);
        }));
        assert!(
            outcome.is_ok(),
            "parser panicked (seed {seed:#x}, iteration {iteration}) on: {:?}",
            String::from_utf8_lossy(&bytes)
        );
    }
}

#[test]
fn unmutated_pool_requests_still_parse() {
    // Sanity check on the generator: every seed request is valid, so a
    // parser regression can't hide behind all-garbage inputs.
    for bytes in valid_requests() {
        let mut reader: &[u8] = &bytes;
        let req = Request::read(&mut reader).expect("pool request must parse");
        assert!(!req.method.is_empty());
    }
}
