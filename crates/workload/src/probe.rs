//! Probe-system construction: a single-process machine quiesced for
//! steady-state microbenchmark measurement.
//!
//! A characterization probe wants the *marginal* cost of one instruction,
//! which means everything asynchronous has to be silenced: the interval
//! timer (and with it every kernel context switch and software interrupt)
//! and the periodic microcode-patch abort cycles. With those off and a
//! warmup long enough to fill the TB, cache, and decode cache, the probe
//! loop is strictly periodic — every measurement window of a whole number
//! of loop periods sees exactly the same event counts, which is what makes
//! `characterize` deterministic and `refute`'s structural predictions
//! exact.

use vax780::{CpuConfig, ProcessSpec, System, SystemBuilder, SystemConfig};
use vax_asm::probe::ProbeLoop;

/// The system configuration probes run under: stock VAX-780 memory
/// geometry, but with the interval timer and patch-cycle charges disabled
/// so nothing asynchronous perturbs the loop.
pub fn quiesced_config() -> SystemConfig {
    SystemConfig {
        cpu: CpuConfig {
            timer_interval: None,
            patch_interval: None,
            ..CpuConfig::VAX_780
        },
        ..SystemConfig::default()
    }
}

/// Build the single-process machine for an assembled probe loop. The
/// process starts at the loop's `entry` label; with the quiesced config it
/// retires exactly one instruction per `System::step`.
pub fn probe_system(probe: &ProbeLoop) -> System {
    let mut b = SystemBuilder::new(quiesced_config());
    b.add_process(ProcessSpec::new(probe.image.clone(), "entry"));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_arch::{AddressingMode, Opcode};
    use vax_asm::probe::{probe_loop, probe_target};

    #[test]
    fn quiesced_config_disables_async_events() {
        let c = quiesced_config();
        assert_eq!(c.cpu.timer_interval, None);
        assert_eq!(c.cpu.patch_interval, None);
        // Everything else stays at the measured-machine values.
        assert!(c.cpu.fusion);
        assert!(c.cpu.decode_cache);
    }

    #[test]
    fn baseline_loop_is_strictly_periodic() {
        let b = probe_loop(None, 0).unwrap();
        let mut sys = probe_system(&b);
        // Two windows of the same whole number of periods must agree on
        // every counter-visible quantity.
        let n = u64::from(b.period) * 200;
        let m1 = sys.measure(2000, n);
        let m2 = sys.measure(0, n);
        assert_eq!(m1.instructions(), n);
        assert_eq!(m1.cycles, m2.cycles, "baseline loop drifted");
        assert_eq!(m1.hist, m2.hist, "histogram not periodic");
    }

    #[test]
    fn probe_loop_runs_clean() {
        let t = probe_target(Opcode::Addl2, AddressingMode::RegisterDeferred).unwrap();
        let p = probe_loop(Some(&t), 4).unwrap();
        let mut sys = probe_system(&p);
        let n = u64::from(p.period) * 100;
        let m = sys.measure(2000, n);
        assert_eq!(m.instructions(), n);
        assert_eq!(m.cpu_stats.total_interrupts(), 0);
    }
}
