//! Workload profiles: the calibration knobs.

/// The five measured workloads of the paper (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Live timesharing, research group (~15 users): editing, program
    /// development, mail, performance data analysis.
    TimesharingResearch,
    /// Live timesharing, CPU-development group (~30 users): general
    /// timesharing plus circuit simulation and microcode development.
    TimesharingCpuDev,
    /// RTE, educational environment (40 simulated users): program
    /// development in several languages, file manipulation.
    Educational,
    /// RTE, scientific/engineering (40 simulated users): scientific
    /// computation and program development.
    SciEng,
    /// RTE, commercial transaction processing (32 simulated users):
    /// database inquiries and updates.
    Commercial,
}

impl Workload {
    /// All five, in the paper's order.
    pub const ALL: [Workload; 5] = [
        Workload::TimesharingResearch,
        Workload::TimesharingCpuDev,
        Workload::Educational,
        Workload::SciEng,
        Workload::Commercial,
    ];

    /// Human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            Workload::TimesharingResearch => "timesharing (research)",
            Workload::TimesharingCpuDev => "timesharing (CPU development)",
            Workload::Educational => "RTE educational",
            Workload::SciEng => "RTE scientific/engineering",
            Workload::Commercial => "RTE commercial",
        }
    }

    /// The calibrated profile for this workload.
    pub fn profile(self) -> WorkloadProfile {
        let mut p = WorkloadProfile::baseline();
        match self {
            Workload::TimesharingResearch => {}
            Workload::TimesharingCpuDev => {
                // Heavier compute (circuit simulation): more float and
                // field work, slightly larger working sets.
                p.w_float = 9.5;
                p.w_field_op = 3.2;
                p.ws_walk_bytes = 128 * 1024;
            }
            Workload::Educational => {
                // Program development: more character handling, calls.
                p.w_char = 1.2;
                p.w_proc_call = 5.0;
                p.routines = 24;
            }
            Workload::SciEng => {
                // Scientific computation: float-dominated.
                p.w_float = 14.0;
                p.w_mov = 28.0;
                p.w_field_op = 2.0;
                p.loop_iters = 12;
            }
            Workload::Commercial => {
                // Transactions: strings, decimal, queues, system services.
                p.w_char = 2.6;
                p.w_decimal = 0.12;
                p.w_system = 2.2;
                p.w_float = 3.0;
                p.string_len_min = 20;
                p.string_len_max = 60;
            }
        }
        p
    }
}

/// Generator-level knobs. Weights (`w_*`) are relative frequencies of
/// *statement kinds* in generated code; each statement expands to one or
/// more instructions (e.g. a conditional branch carries its test).
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    // ---- statement-kind weights ----
    /// Plain moves (MOVx/MOVZx/MOVAx/PUSHL).
    pub w_mov: f64,
    /// Integer add/sub/inc/dec/clr/convert.
    pub w_arith: f64,
    /// Boolean ops (BIC/BIS/XOR) and shifts.
    pub w_bool: f64,
    /// Test/compare without a branch.
    pub w_test: f64,
    /// Conditional branch (test + Bxx).
    pub w_cond_branch: f64,
    /// Low-bit test branches (BLBS/BLBC).
    pub w_lowbit: f64,
    /// Bit branches (BBS/BBC/BBxS/BBxC).
    pub w_bit_branch: f64,
    /// Case branch with a small table.
    pub w_case: f64,
    /// Leaf subroutine call (BSBW/JSB … RSB).
    pub w_sub_call: f64,
    /// Procedure call (CALLS … RET).
    pub w_proc_call: f64,
    /// PUSHR/POPR pair.
    pub w_pushr: f64,
    /// Bit-field operations (EXTV/EXTZV/INSV/FFS/CMPV).
    pub w_field_op: f64,
    /// Floating point and integer multiply/divide.
    pub w_float: f64,
    /// System statements (CHMK, INSQUE/REMQUE, PROBER, MFPR).
    pub w_system: f64,
    /// Character-string instructions.
    pub w_char: f64,
    /// Packed-decimal instructions.
    pub w_decimal: f64,
    /// Small counted inner loop (SOBGTR over 2-3 statements).
    pub w_inner_loop: f64,

    // ---- structure ----
    /// Routines per program (levels of a call DAG).
    pub routines: u32,
    /// Statements per routine body (one loop around the body).
    pub body_statements: u32,
    /// Loop iterations (the paper infers ~10 from loop-branch taken rates).
    pub loop_iters: u32,

    // ---- operand addressing-mode mix (per mille, first specifier) ----
    /// Register mode weight.
    pub m1_register: u32,
    /// Short literal weight.
    pub m1_literal: u32,
    /// Immediate weight.
    pub m1_immediate: u32,
    /// Displacement weight.
    pub m1_disp: u32,
    /// Register-deferred weight.
    pub m1_deferred: u32,
    /// Autoincrement/autodecrement weight.
    pub m1_autoinc: u32,
    /// Displacement-deferred weight.
    pub m1_disp_def: u32,
    /// Absolute weight.
    pub m1_absolute: u32,
    /// Per-mille of memory specifiers that carry an index prefix (spec 1).
    pub m1_indexed: u32,

    /// Register mode weight (specs 2–6).
    pub m2_register: u32,
    /// Short literal weight (specs 2–6).
    pub m2_literal: u32,
    /// Immediate weight (specs 2–6).
    pub m2_immediate: u32,
    /// Displacement weight (specs 2–6).
    pub m2_disp: u32,
    /// Register-deferred weight (specs 2–6).
    pub m2_deferred: u32,
    /// Autoincrement/autodecrement weight (specs 2–6).
    pub m2_autoinc: u32,
    /// Displacement-deferred weight (specs 2–6).
    pub m2_disp_def: u32,
    /// Absolute weight (specs 2–6).
    pub m2_absolute: u32,
    /// Indexed per-mille (specs 2–6).
    pub m2_indexed: u32,

    // ---- data behaviour ----
    /// Bytes of the hot scratch working set (good locality).
    pub ws_hot_bytes: u32,
    /// Bytes of the cold region walked with a stride (poor locality).
    pub ws_walk_bytes: u32,
    /// Stride of the cold walk.
    pub walk_stride: u32,
    /// Character-string length range.
    pub string_len_min: u32,
    /// Character-string length range.
    pub string_len_max: u32,
    /// Packed-decimal digit count range.
    pub decimal_digits_min: u32,
    /// Packed-decimal digit count range.
    pub decimal_digits_max: u32,
    /// Fraction (per mille) of data references that are unaligned.
    pub unaligned_per_mille: u32,
}

impl WorkloadProfile {
    /// The baseline profile, calibrated against the paper's composite
    /// workload (Tables 1–5).
    pub fn baseline() -> WorkloadProfile {
        WorkloadProfile {
            // Weights sum to ~100 and approximate Table 1 after accounting
            // for kernel activity and structural instructions.
            w_mov: 18.0,
            w_arith: 10.0,
            w_bool: 4.0,
            w_test: 3.5,
            w_cond_branch: 46.0,
            w_lowbit: 6.0,
            w_bit_branch: 12.0,
            w_case: 1.6,
            w_sub_call: 7.0,  // each expands to BSB…RSB (2 instructions)
            w_proc_call: 5.5, // each expands to CALLS…RET (2 instructions)
            w_pushr: 0.7,
            w_field_op: 9.0,
            w_float: 9.5,
            w_system: 2.0,
            w_char: 1.1,
            w_decimal: 0.07,
            w_inner_loop: 1.2,

            routines: 22,
            body_statements: 40,
            loop_iters: 10,

            // Table 4, SPEC1 column (per mille).
            m1_register: 287,
            m1_literal: 211,
            m1_immediate: 32,
            m1_disp: 250,
            m1_deferred: 90,
            m1_autoinc: 50,
            m1_disp_def: 50,
            m1_absolute: 10,
            m1_indexed: 340,

            // Table 4, SPEC2-6 column (per mille).
            m2_register: 526,
            m2_literal: 108,
            m2_immediate: 17,
            m2_disp: 230,
            m2_deferred: 60,
            m2_autoinc: 30,
            m2_disp_def: 20,
            m2_absolute: 9,
            m2_indexed: 170,

            ws_hot_bytes: 3 * 1024,
            ws_walk_bytes: 96 * 1024,
            walk_stride: 516,
            string_len_min: 24,
            string_len_max: 56,
            decimal_digits_min: 8,
            decimal_digits_max: 24,
            unaligned_per_mille: 16,
        }
    }

    /// Total statement weight.
    pub fn total_weight(&self) -> f64 {
        self.w_mov
            + self.w_arith
            + self.w_bool
            + self.w_test
            + self.w_cond_branch
            + self.w_lowbit
            + self.w_bit_branch
            + self.w_case
            + self.w_sub_call
            + self.w_proc_call
            + self.w_pushr
            + self.w_field_op
            + self.w_float
            + self.w_system
            + self.w_char
            + self.w_decimal
            + self.w_inner_loop
    }
}

impl Default for WorkloadProfile {
    fn default() -> Self {
        WorkloadProfile::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_weights_near_100() {
        let p = WorkloadProfile::baseline();
        let t = p.total_weight();
        assert!((90.0..160.0).contains(&t), "total weight {t}");
    }

    #[test]
    fn profiles_differ() {
        let sci = Workload::SciEng.profile();
        let com = Workload::Commercial.profile();
        assert!(sci.w_float > com.w_float);
        assert!(com.w_decimal > sci.w_decimal);
        for w in Workload::ALL {
            assert!(!w.name().is_empty());
            let p = w.profile();
            assert!(p.total_weight() > 50.0);
        }
    }
}
