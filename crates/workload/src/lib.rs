//! # vax-workload
//!
//! Synthetic workload generation, standing in for the paper's five
//! measured workloads (two live timesharing systems and three RTE-driven
//! synthetic user populations).
//!
//! A [`WorkloadProfile`] holds generator-level knobs — instruction-mix
//! weights, operand addressing-mode mixes, loop shapes, call density,
//! string lengths, working-set sizes — calibrated so the *measured*
//! frequencies (paper Tables 1–5) come out near the published values. The
//! time decomposition (Tables 8–9) is never tuned directly; it emerges from
//! the microarchitecture model running this code.
//!
//! [`generate_process`] emits a complete VAX program (real machine code via
//! `vax-asm`) and [`build_system`] assembles a multi-user system à la the
//! RTE experiments.

pub mod codegen;
pub mod probe;
pub mod profile;
pub mod rte;

pub use codegen::generate_process;
pub use probe::{probe_system, quiesced_config};
pub use profile::{Workload, WorkloadProfile};
pub use rte::{build_system, composite_measurement, run_workload};
