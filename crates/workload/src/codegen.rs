//! The VAX program generator.
//!
//! Emits a complete user program as real VAX machine code: a call DAG of
//! routines whose bodies are loops over statement sequences sampled from
//! the profile's instruction-mix weights, plus leaf subroutines, CASE
//! dispatches, character/decimal/queue work, and a startup prologue that
//! initializes base registers, pointer tables, and data patterns.
//!
//! Register conventions in generated code:
//!
//! | Reg | Use |
//! |-----|-----|
//! | R0, R1, R3 | statement scratch |
//! | R2  | routine loop counter (saved by entry masks) |
//! | R4  | roving pointer (autoinc/autodec), reset each iteration |
//! | R5  | branch-bias counter |
//! | R6  | hot working set base |
//! | R7  | pointer-table base |
//! | R8  | cold-walk pointer |
//! | R9  | string area base |
//! | R10 | misc data base (queues, floats, decimals) |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vax780::ProcessSpec;
use vax_arch::{Opcode, Reg};
use vax_asm::{Asm, Operand};

use crate::profile::WorkloadProfile;

use Operand::{Imm, Label, Lit, Reg as R};

/// Fixed start of the data region (code must fit below).
const DATA_BASE: u32 = 0x10000;
/// Code origin (page 0 is the guard page).
const ORIGIN: u32 = 0x200;

/// Data-region layout, derived from the profile.
#[derive(Debug, Clone, Copy)]
struct DataLayout {
    wsa: u32,
    ptrs: u32,
    strs: u32,
    misc: u32,
    wsb: u32,
    wsb_end: u32,
}

impl DataLayout {
    fn new(p: &WorkloadProfile) -> DataLayout {
        // Read-mostly tables first; the writable working sets (wsa, wsb)
        // last, so indexed-addressing overreach past a working set lands in
        // the next working set or the (mapped, mostly unused) stack gap —
        // never in the pointer table.
        let ptrs = DATA_BASE;
        let strs = ptrs + 256;
        let misc = strs + 2048;
        let wsa = misc + 512;
        let wsb = (wsa + p.ws_hot_bytes).next_multiple_of(512);
        DataLayout {
            wsa,
            ptrs,
            strs,
            misc,
            wsb,
            wsb_end: wsb + p.ws_walk_bytes,
        }
    }

    /// Misc-slot addresses. The first 16 bytes of `misc` are a sacrificial
    /// landing zone for register-deferred writes through R10; real
    /// structures start at +16.
    fn qhead(&self) -> u32 {
        self.misc + 16
    }
    fn qnode(&self) -> u32 {
        self.misc + 24
    }
    fn floats(&self) -> u32 {
        self.misc + 64
    }
    fn decimals(&self) -> u32 {
        self.misc + 128
    }
    fn save_r2(&self) -> u32 {
        self.misc + 192
    }
    fn wlimit(&self) -> u32 {
        self.misc + 196
    }
}

/// Statement kinds sampled from profile weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stmt {
    Mov,
    Arith,
    Bool,
    Test,
    CondBranch,
    LowBit,
    BitBranch,
    Case,
    SubCall,
    ProcCall,
    Pushr,
    FieldOp,
    Float,
    System,
    Char,
    Decimal,
    InnerLoop,
}

struct Gen<'p> {
    p: &'p WorkloadProfile,
    rng: StdRng,
    asm: Asm,
    d: DataLayout,
    label_n: u32,
    /// Routine labels by level.
    levels: Vec<Vec<String>>,
    subs: Vec<String>,
    kinds: Vec<(Stmt, f64)>,
    total_w: f64,
}

impl<'p> Gen<'p> {
    fn new(p: &'p WorkloadProfile, seed: u64) -> Gen<'p> {
        let kinds = vec![
            (Stmt::Mov, p.w_mov),
            (Stmt::Arith, p.w_arith),
            (Stmt::Bool, p.w_bool),
            (Stmt::Test, p.w_test),
            (Stmt::CondBranch, p.w_cond_branch),
            (Stmt::LowBit, p.w_lowbit),
            (Stmt::BitBranch, p.w_bit_branch),
            (Stmt::Case, p.w_case),
            (Stmt::SubCall, p.w_sub_call),
            (Stmt::ProcCall, p.w_proc_call),
            (Stmt::Pushr, p.w_pushr),
            (Stmt::FieldOp, p.w_field_op),
            (Stmt::Float, p.w_float),
            (Stmt::System, p.w_system),
            (Stmt::Char, p.w_char),
            (Stmt::Decimal, p.w_decimal),
            (Stmt::InnerLoop, p.w_inner_loop),
        ];
        let total_w = kinds.iter().map(|(_, w)| w).sum();
        Gen {
            p,
            rng: StdRng::seed_from_u64(seed),
            asm: Asm::new(ORIGIN),
            d: DataLayout::new(p),
            label_n: 0,
            levels: vec![Vec::new(); 4],
            subs: Vec::new(),
            kinds,
            total_w,
        }
    }

    fn lbl(&mut self) -> String {
        self.label_n += 1;
        format!("L{}", self.label_n)
    }

    fn sample_kind(&mut self) -> Stmt {
        let mut x = self.rng.gen_range(0.0..self.total_w);
        for (k, w) in &self.kinds {
            if x < *w {
                return *k;
            }
            x -= w;
        }
        Stmt::Mov
    }

    // ---- operand sampling ----

    /// A data operand for the given access. `first` selects the SPEC1 vs
    /// SPEC2-6 mode mix; `write` excludes literal/immediate.
    fn operand(&mut self, first: bool, write: bool) -> Operand {
        let (reg_w, lit, imm, disp, defd, auto, dispdef, abs, idx) = if first {
            (
                self.p.m1_register,
                self.p.m1_literal,
                self.p.m1_immediate,
                self.p.m1_disp,
                self.p.m1_deferred,
                self.p.m1_autoinc,
                self.p.m1_disp_def,
                self.p.m1_absolute,
                self.p.m1_indexed,
            )
        } else {
            (
                self.p.m2_register,
                self.p.m2_literal,
                self.p.m2_immediate,
                self.p.m2_disp,
                self.p.m2_deferred,
                self.p.m2_autoinc,
                self.p.m2_disp_def,
                self.p.m2_absolute,
                self.p.m2_indexed,
            )
        };
        let (lit, imm) = if write { (0, 0) } else { (lit, imm) };
        let total = reg_w + lit + imm + disp + defd + auto + dispdef + abs;
        let mut x = self.rng.gen_range(0..total);
        // R3 is the dedicated (bounded) index register; scratch is R0/R1.
        let scratch = [Reg::new(0), Reg::new(1)];
        let sc = scratch[self.rng.gen_range(0..2)];
        let base = if x < reg_w {
            return R(sc);
        } else {
            x -= reg_w;
            if x < lit {
                return Lit(self.rng.gen_range(0..64));
            }
            x -= lit;
            if x < imm {
                return Imm(self.rng.gen());
            }
            x -= imm;
            if x < disp {
                self.disp_operand()
            } else {
                x -= disp;
                if x < defd {
                    let bases = [Reg::new(6), Reg::new(9), Reg::new(10)];
                    Operand::Deferred(bases[self.rng.gen_range(0..3)])
                } else {
                    x -= defd;
                    if x < auto {
                        if self.rng.gen_bool(0.5) {
                            Operand::AutoInc(Reg::new(4))
                        } else {
                            Operand::AutoDec(Reg::new(4))
                        }
                    } else {
                        x -= auto;
                        if x < dispdef {
                            let slot = self.rng.gen_range(0..16u32);
                            Operand::DispDef(slot as i32 * 4, Reg::new(7))
                        } else {
                            x -= dispdef;
                            if x < abs {
                                let off = self.aligned_hot_offset();
                                Operand::Abs(self.d.wsa + off)
                            } else {
                                self.disp_operand()
                            }
                        }
                    }
                }
            }
        };
        // Index prefix on a per-mille of memory operands. R10-deferred is
        // excluded: misc+4*R3 would reach the control slots (walk limit,
        // loop counters) that keep generated programs self-consistent.
        if self.rng.gen_range(0..1000) < idx {
            let indexable = !matches!(
                base,
                Operand::AutoInc(_) | Operand::AutoDec(_) | Operand::Deferred(Reg { .. })
            ) || matches!(base, Operand::Deferred(r) if r.number() != 10);
            if indexable {
                // R3 holds small integers; keep the reach tiny.
                return Operand::Indexed(Box::new(base), Reg::new(3));
            }
        }
        base
    }

    fn aligned_hot_offset(&mut self) -> u32 {
        let unaligned = self.rng.gen_range(0..1000) < self.p.unaligned_per_mille;
        let off = self.rng.gen_range(0..self.p.ws_hot_bytes / 4 - 4) * 4;
        if unaligned {
            off + 1
        } else {
            off
        }
    }

    /// Displacement off a data base register: mostly the hot set, sometimes
    /// the cold walker.
    fn disp_operand(&mut self) -> Operand {
        if self.rng.gen_bool(0.7) {
            Operand::Disp(self.aligned_hot_offset() as i32, Reg::new(6))
        } else {
            Operand::Disp(self.rng.gen_range(0..512) * 4, Reg::new(8))
        }
    }

    // ---- statements ----

    fn emit_statement(&mut self, kind: Stmt, level: usize) {
        match kind {
            Stmt::Mov => self.stmt_mov(),
            Stmt::Arith => self.stmt_arith(),
            Stmt::Bool => self.stmt_bool(),
            Stmt::Test => self.stmt_test(),
            Stmt::CondBranch => self.stmt_cond_branch(),
            Stmt::LowBit => self.stmt_lowbit(),
            Stmt::BitBranch => self.stmt_bit_branch(),
            Stmt::Case => self.stmt_case(),
            Stmt::SubCall => self.stmt_sub_call(),
            Stmt::ProcCall => self.stmt_proc_call(level),
            Stmt::Pushr => self.stmt_pushr(),
            Stmt::FieldOp => self.stmt_field(),
            Stmt::Float => self.stmt_float(),
            Stmt::System => self.stmt_system(),
            Stmt::Char => self.stmt_char(),
            Stmt::Decimal => self.stmt_decimal(),
            Stmt::InnerLoop => self.stmt_inner_loop(),
        }
    }

    /// A small counted inner loop: the dominant source of the paper's
    /// loop-branch frequency (taken rate (k-1)/k ≈ 90% with k ≈ 8-12).
    fn stmt_inner_loop(&mut self) {
        let top = self.lbl();
        let cnt = (self.d.save_r2() - self.d.misc) as i32 + 8; // counter slot
        let iters = self.rng.gen_range(7..13u8);
        let variant = self.rng.gen_range(0..10);
        if variant < 6 {
            self.asm.insn(
                Opcode::Movl,
                &[Lit(iters), Operand::Disp(cnt, Reg::new(10))],
                None,
            );
        } else {
            self.asm
                .insn(Opcode::Clrl, &[Operand::Disp(cnt, Reg::new(10))], None);
        }
        self.asm.label(&top);
        for _ in 0..self.rng.gen_range(2..4u32) {
            if self.rng.gen_bool(0.6) {
                self.stmt_mov();
            } else {
                self.stmt_arith();
            }
        }
        match variant {
            0..=5 => {
                self.asm.insn(
                    Opcode::Sobgtr,
                    &[Operand::Disp(cnt, Reg::new(10))],
                    Some(&top),
                );
            }
            6..=7 => {
                self.asm.insn(
                    Opcode::Aoblss,
                    &[Lit(iters), Operand::Disp(cnt, Reg::new(10))],
                    Some(&top),
                );
            }
            _ => {
                self.asm.insn(
                    Opcode::Acbl,
                    &[Lit(iters), Lit(1), Operand::Disp(cnt, Reg::new(10))],
                    Some(&top),
                );
            }
        }
    }

    fn stmt_mov(&mut self) {
        let choice = self.rng.gen_range(0..10);
        match choice {
            0..=5 => {
                let src = self.operand(true, false);
                let dst = self.operand(false, true);
                let op = match self.rng.gen_range(0..8) {
                    0 => Opcode::Movb,
                    1 => Opcode::Movw,
                    _ => Opcode::Movl,
                };
                self.asm.insn(op, &[src, dst], None);
            }
            6 => {
                let src = self.operand(true, false);
                self.asm.insn(Opcode::Pushl, &[src], None);
                // Balance the stack immediately.
                let dst = self.operand(false, true);
                self.asm
                    .insn(Opcode::Movl, &[Operand::AutoInc(Reg::SP), dst], None);
            }
            7 => {
                let off = self.aligned_hot_offset() & !1;
                self.asm.insn(
                    Opcode::Movab,
                    &[Operand::Disp(off as i32, Reg::new(6)), R(Reg::new(1))],
                    None,
                );
            }
            8 => {
                let src = self.operand(true, false);
                let dst = self.operand(false, true);
                self.asm.insn(Opcode::Movzbl, &[src, dst], None);
            }
            _ => {
                // Quad operands occupy a register *pair*; confine register
                // operands to R0/R1 so R2 (loop counter) and R4 (roving
                // pointer) are never clobbered by the high half.
                let fix = |o: Operand| match o {
                    R(_) => R(Reg::new(0)),
                    other => other,
                };
                let src = fix(self.operand(true, false));
                let dst = fix(self.operand(false, true));
                self.asm.insn(Opcode::Movq, &[src, dst], None);
            }
        }
    }

    fn stmt_arith(&mut self) {
        let choice = self.rng.gen_range(0..12);
        match choice {
            0..=3 => {
                let src = self.operand(true, false);
                let dst = R(Reg::new(self.rng.gen_range(0..2))); // R0 or R1
                let op = if self.rng.gen_bool(0.6) {
                    Opcode::Addl2
                } else {
                    Opcode::Subl2
                };
                self.asm.insn(op, &[src, dst], None);
            }
            4..=5 => {
                let a = self.operand(true, false);
                let b = self.operand(false, false);
                let dst = self.operand(false, true);
                let op = if self.rng.gen_bool(0.5) {
                    Opcode::Addl3
                } else {
                    Opcode::Subl3
                };
                self.asm.insn(op, &[a, b, dst], None);
            }
            6..=7 => {
                let dst = self.operand(true, true);
                let op = if self.rng.gen_bool(0.6) {
                    Opcode::Incl
                } else {
                    Opcode::Decl
                };
                self.asm.insn(op, &[dst], None);
            }
            8 => {
                let dst = self.operand(true, true);
                self.asm.insn(Opcode::Clrl, &[dst], None);
            }
            9 => {
                let src = self.operand(true, false);
                let dst = self.operand(false, true);
                self.asm.insn(Opcode::Cvtwl, &[src, dst], None);
            }
            10 => {
                let src = self.operand(false, false);
                self.asm.insn(
                    Opcode::Ashl,
                    &[Lit(self.rng.gen_range(0..8)), src, R(Reg::new(0))],
                    None,
                );
            }
            _ => {
                let src = self.operand(true, false);
                let dst = self.operand(false, true);
                self.asm.insn(Opcode::Mnegl, &[src, dst], None);
            }
        }
    }

    fn stmt_bool(&mut self) {
        let src = self.operand(true, false);
        let dst = R(Reg::new([0u8, 1][self.rng.gen_range(0..2)]));
        let op = match self.rng.gen_range(0..3) {
            0 => Opcode::Bicl2,
            1 => Opcode::Bisl2,
            _ => Opcode::Xorl2,
        };
        self.asm.insn(op, &[src, dst], None);
    }

    fn stmt_test(&mut self) {
        if self.rng.gen_bool(0.5) {
            let a = self.operand(true, false);
            self.asm.insn(Opcode::Tstl, &[a], None);
        } else {
            let a = self.operand(true, false);
            let b = self.operand(false, false);
            self.asm.insn(Opcode::Cmpl, &[a, b], None);
        }
    }

    /// Conditional branch: a test on the bias counter (≈50% taken) or on
    /// data, branching forward over one or two filler statements. BRB/BRW
    /// mix in as the always-taken members of the class.
    fn stmt_cond_branch(&mut self) {
        let skip = self.lbl();
        let roll = self.rng.gen_range(0..100);
        if roll < 2 {
            // Unconditional JMP (Table 2's rare JMP class).
            self.asm.insn(Opcode::Jmp, &[Label(skip.clone())], None);
        } else if roll < 12 {
            // Unconditional member of the simple-branch class.
            let op = if self.rng.gen_bool(0.7) {
                Opcode::Brb
            } else {
                Opcode::Brw
            };
            self.asm.insn(op, &[], Some(&skip));
        } else {
            if self.rng.gen_bool(0.6) {
                let bit = 1u8 << self.rng.gen_range(0..3);
                self.asm
                    .insn(Opcode::Bitl, &[Lit(bit), R(Reg::new(5))], None);
                self.asm.insn(Opcode::Incl, &[R(Reg::new(5))], None);
            } else {
                let a = self.operand(true, false);
                self.asm.insn(Opcode::Tstl, &[a], None);
            }
            let op = match self.rng.gen_range(0..6) {
                0 => Opcode::Bneq,
                1 => Opcode::Beql,
                2 => Opcode::Bgtr,
                3 => Opcode::Bleq,
                4 => Opcode::Bgeq,
                _ => Opcode::Blss,
            };
            self.asm.insn(op, &[], Some(&skip));
        }
        // Filler.
        for _ in 0..self.rng.gen_range(1..3u32) {
            self.stmt_mov();
        }
        self.asm.label(&skip);
    }

    fn stmt_lowbit(&mut self) {
        let skip = self.lbl();
        let src = if self.rng.gen_bool(0.6) {
            Operand::Disp(self.aligned_hot_offset() as i32 & !3, Reg::new(6))
        } else {
            R(Reg::new(5))
        };
        let op = if self.rng.gen_bool(0.5) {
            Opcode::Blbs
        } else {
            Opcode::Blbc
        };
        self.asm.insn(op, &[src], Some(&skip));
        self.stmt_mov();
        self.asm.label(&skip);
    }

    fn stmt_bit_branch(&mut self) {
        let skip = self.lbl();
        let pos = Lit(self.rng.gen_range(0..32));
        let base = if self.rng.gen_bool(0.9) {
            Operand::Disp(self.aligned_hot_offset() as i32 & !3, Reg::new(6))
        } else {
            R(Reg::new(5))
        };
        let op = match self.rng.gen_range(0..4) {
            0 => Opcode::Bbs,
            1 => Opcode::Bbc,
            2 => Opcode::Bbss,
            _ => Opcode::Bbcc,
        };
        self.asm.insn(op, &[pos, base], Some(&skip));
        self.stmt_mov();
        self.asm.label(&skip);
    }

    fn stmt_case(&mut self) {
        let c0 = self.lbl();
        let c1 = self.lbl();
        let c2 = self.lbl();
        let join = self.lbl();
        // Selector = bias counter & 3 (the value 3 exercises the
        // out-of-range fall-through path).
        self.asm.insn(
            Opcode::Bicl3,
            &[Imm(!3u32), R(Reg::new(5)), R(Reg::new(0))],
            None,
        );
        self.asm.insn(Opcode::Incl, &[R(Reg::new(5))], None);
        self.asm
            .insn(Opcode::Caseb, &[R(Reg::new(0)), Lit(0), Lit(2)], None);
        self.asm.case_table(&[&c0, &c1, &c2]);
        self.asm.insn(Opcode::Brb, &[], Some(&join)); // out of range
        self.asm.label(&c0);
        self.stmt_mov();
        self.asm.insn(Opcode::Brb, &[], Some(&join));
        self.asm.label(&c1);
        self.stmt_arith();
        self.asm.insn(Opcode::Brb, &[], Some(&join));
        self.asm.label(&c2);
        self.stmt_bool();
        self.asm.label(&join);
    }

    fn stmt_sub_call(&mut self) {
        if self.subs.is_empty() {
            return self.stmt_mov();
        }
        // Target a recent subroutine so the BSBW word displacement stays in
        // range as the program grows.
        let lo = self.subs.len().saturating_sub(2);
        let i = self.rng.gen_range(lo..self.subs.len());
        let target = self.subs[i].clone();
        if self.rng.gen_bool(0.85) {
            self.asm.insn(Opcode::Bsbw, &[], Some(&target));
        } else {
            self.asm.insn(Opcode::Jsb, &[Label(target)], None);
        }
    }

    /// Procedure call with a shared depth budget in memory: any routine may
    /// call any other, and the counter bounds dynamic recursion — this
    /// keeps the dynamic execution weight spread across the whole program
    /// instead of concentrating in call-DAG leaves.
    fn stmt_proc_call(&mut self, _level: usize) {
        let all: usize = self.levels.iter().map(|l| l.len()).sum();
        if all == 0 {
            return self.stmt_mov();
        }
        let mut i = self.rng.gen_range(0..all);
        let mut target = None;
        for level in &self.levels {
            if i < level.len() {
                target = Some(level[i].clone());
                break;
            }
            i -= level.len();
        }
        let target = target.unwrap();
        let depth = (self.d.save_r2() - self.d.misc) as i32 + 12; // misc+204
        let skip = self.lbl();
        self.asm
            .insn(Opcode::Decl, &[Operand::Disp(depth, Reg::new(10))], None);
        self.asm.insn(Opcode::Blss, &[], Some(&skip));
        if self.rng.gen_bool(0.5) {
            self.asm.insn(Opcode::Pushl, &[Lit(7)], None);
            self.asm.insn(Opcode::Calls, &[Lit(1), Label(target)], None);
        } else {
            self.asm.insn(Opcode::Calls, &[Lit(0), Label(target)], None);
        }
        self.asm.label(&skip);
        self.asm
            .insn(Opcode::Incl, &[Operand::Disp(depth, Reg::new(10))], None);
    }

    fn stmt_pushr(&mut self) {
        let m = 0b1011u8; // R0, R1, R3
        self.asm.insn(Opcode::Pushr, &[Lit(m)], None);
        self.stmt_arith();
        self.asm.insn(Opcode::Popr, &[Lit(m)], None);
    }

    fn stmt_field(&mut self) {
        let pos = Lit(self.rng.gen_range(0..24));
        let size = Lit(self.rng.gen_range(1..16));
        let base = match self.rng.gen_range(0..10) {
            0..=4 => Operand::Disp(self.aligned_hot_offset() as i32 & !3, Reg::new(6)),
            5..=7 => Operand::Disp(self.rng.gen_range(0..500) * 4, Reg::new(8)),
            _ => R(Reg::new(1)),
        };
        match self.rng.gen_range(0..5) {
            0 | 1 => self
                .asm
                .insn(Opcode::Extzv, &[pos, size, base, R(Reg::new(0))], None),
            2 => self
                .asm
                .insn(Opcode::Extv, &[pos, size, base, R(Reg::new(0))], None),
            3 => self
                .asm
                .insn(Opcode::Insv, &[R(Reg::new(0)), pos, size, base], None),
            _ => self
                .asm
                .insn(Opcode::Ffs, &[Lit(0), Lit(32), base, R(Reg::new(0))], None),
        };
    }

    fn stmt_float(&mut self) {
        let f = |g: &mut Gen<'_>| {
            let off = g.rng.gen_range(0..8u32) * 4;
            Operand::Disp((g.d.floats() - g.d.misc + off) as i32, Reg::new(10))
        };
        match self.rng.gen_range(0..10) {
            0..=2 => {
                let a = f(self);
                self.asm.insn(Opcode::Addf2, &[a, R(Reg::new(0))], None);
            }
            3..=4 => {
                let a = f(self);
                self.asm.insn(Opcode::Mulf2, &[a, R(Reg::new(0))], None);
            }
            5 => {
                let a = f(self);
                self.asm.insn(Opcode::Subf2, &[a, R(Reg::new(1))], None);
            }
            6 => {
                let a = f(self);
                let b = f(self);
                self.asm.insn(Opcode::Cmpf, &[a, b], None);
            }
            7 => {
                let a = f(self);
                self.asm.insn(Opcode::Movf, &[a, R(Reg::new(0))], None);
            }
            8 => {
                let src = self.operand(true, false);
                self.asm.insn(Opcode::Mull2, &[src, R(Reg::new(0))], None);
            }
            _ => {
                self.asm
                    .insn(Opcode::Divl2, &[Lit(3), R(Reg::new(0))], None);
            }
        }
    }

    fn stmt_system(&mut self) {
        match self.rng.gen_range(0..8) {
            0..=2 => {
                self.asm.insn(Opcode::Chmk, &[Lit(0)], None);
            }
            3..=4 => {
                self.asm.insn(Opcode::Chmk, &[Lit(1)], None);
            }
            5 => {
                // User-space queue work.
                let qn = self.d.qnode() - self.d.misc;
                let qh = self.d.qhead() - self.d.misc;
                self.asm.insn(
                    Opcode::Movab,
                    &[Operand::Disp(qn as i32 + 16, Reg::new(10)), R(Reg::new(0))],
                    None,
                );
                self.asm.insn(
                    Opcode::Movab,
                    &[Operand::Disp(qh as i32, Reg::new(10)), R(Reg::new(1))],
                    None,
                );
                // Re-initialize the queue head (self-linked) so the
                // operation is self-contained.
                self.asm.insn(
                    Opcode::Movl,
                    &[R(Reg::new(1)), Operand::Deferred(Reg::new(1))],
                    None,
                );
                self.asm.insn(
                    Opcode::Movl,
                    &[R(Reg::new(1)), Operand::Disp(4, Reg::new(1))],
                    None,
                );
                self.asm.insn(
                    Opcode::Insque,
                    &[
                        Operand::Deferred(Reg::new(0)),
                        Operand::Deferred(Reg::new(1)),
                    ],
                    None,
                );
                self.asm.insn(
                    Opcode::Remque,
                    &[Operand::Deferred(Reg::new(0)), R(Reg::new(1))],
                    None,
                );
            }
            6 => {
                let off = self.aligned_hot_offset() & !3;
                self.asm.insn(
                    Opcode::Prober,
                    &[Lit(0), Lit(4), Operand::Disp(off as i32, Reg::new(6))],
                    None,
                );
            }
            _ => {
                self.asm
                    .insn(Opcode::Mfpr, &[Lit(18), R(Reg::new(1))], None);
            }
        }
    }

    /// Character-string statement. MOVC-class instructions clobber R0–R5,
    /// so the loop counter (R2) is saved around them and the roving pointer
    /// (R4) re-established after.
    fn stmt_char(&mut self) {
        let len = self
            .rng
            .gen_range(self.p.string_len_min..=self.p.string_len_max);
        let sv = (self.d.save_r2() - self.d.misc) as i32;
        self.asm.insn(
            Opcode::Movl,
            &[R(Reg::new(2)), Operand::Disp(sv, Reg::new(10))],
            None,
        );
        let soff = self.rng.gen_range(0..(2048 - 64) / 4) * 4;
        let len_op = if len < 64 { Lit(len as u8) } else { Imm(len) };
        match self.rng.gen_range(0..6) {
            0..=2 => {
                // Copy into the cold walker region, advancing it; the
                // source alternates between warm text and the cold region
                // itself (strings in live systems have poor locality).
                let src = if self.rng.gen_bool(0.5) {
                    Operand::Disp(soff, Reg::new(9))
                } else {
                    Operand::Disp(1024, Reg::new(8))
                };
                self.asm.insn(
                    Opcode::Movc3,
                    &[len_op, src, Operand::Deferred(Reg::new(8))],
                    None,
                );
                self.advance_walker();
            }
            3 => {
                self.asm.insn(
                    Opcode::Cmpc3,
                    &[
                        len_op,
                        Operand::Disp(soff, Reg::new(9)),
                        Operand::Disp((soff + 64) & 0x7fc, Reg::new(9)),
                    ],
                    None,
                );
            }
            4 => {
                // 'q' never occurs in the text: the scan runs full length.
                self.asm.insn(
                    Opcode::Locc,
                    &[Imm(b'q' as u32), len_op, Operand::Disp(soff, Reg::new(9))],
                    None,
                );
            }
            _ => {
                // The first 1 KB of the string area is a run of 'a'.
                self.asm.insn(
                    Opcode::Skpc,
                    &[
                        Imm(b'a' as u32),
                        len_op,
                        Operand::Disp(self.rng.gen_range(0..900), Reg::new(9)),
                    ],
                    None,
                );
            }
        }
        self.asm.insn(
            Opcode::Movl,
            &[Operand::Disp(sv, Reg::new(10)), R(Reg::new(2))],
            None,
        );
        self.reset_roving();
        self.rebind_index();
    }

    fn stmt_decimal(&mut self) {
        let digits = self
            .rng
            .gen_range(self.p.decimal_digits_min..=self.p.decimal_digits_max);
        let d0 = (self.d.decimals() - self.d.misc) as i32;
        let a = Operand::Disp(d0, Reg::new(10));
        let b = Operand::Disp(d0 + 20, Reg::new(10));
        match self.rng.gen_range(0..4) {
            0 => {
                self.asm.insn(
                    Opcode::Addp4,
                    &[Lit(digits as u8), a, Lit(digits as u8), b],
                    None,
                );
            }
            1 => {
                self.asm
                    .insn(Opcode::Cmpp3, &[Lit(digits as u8), a, b], None);
            }
            2 => {
                self.asm
                    .insn(Opcode::Movp, &[Lit(digits as u8), a, b], None);
            }
            _ => {
                self.asm
                    .insn(Opcode::Cvtlp, &[R(Reg::new(1)), Lit(digits as u8), b], None);
            }
        }
    }

    /// Advance the cold walker, wrapping at the region end.
    fn advance_walker(&mut self) {
        let ok = self.lbl();
        self.asm.insn(
            Opcode::Addl2,
            &[Imm(self.p.walk_stride), R(Reg::new(8))],
            None,
        );
        self.asm.insn(
            Opcode::Cmpl,
            &[
                R(Reg::new(8)),
                Operand::Disp((self.d.wlimit() - self.d.misc) as i32, Reg::new(10)),
            ],
            None,
        );
        self.asm.insn(Opcode::Blss, &[], Some(&ok));
        self.asm
            .insn(Opcode::Movl, &[Imm(self.d.wsb), R(Reg::new(8))], None);
        self.asm.label(&ok);
    }

    /// Re-establish the bounded index register (R3 = R5 & 0xFF) after an
    /// instruction that architecturally clobbers R0-R5.
    fn rebind_index(&mut self) {
        self.asm.insn(
            Opcode::Bicl3,
            &[Imm(0xFFFF_FF00), R(Reg::new(5)), R(Reg::new(3))],
            None,
        );
    }

    fn reset_roving(&mut self) {
        let off = self.rng.gen_range(0..self.p.ws_hot_bytes / 8) * 4;
        self.asm.insn(
            Opcode::Movab,
            &[Operand::Disp(off as i32, Reg::new(6)), R(Reg::new(4))],
            None,
        );
    }

    // ---- program structure ----

    fn emit_startup_subs(&mut self) {
        // placeholder: sub0 body is emitted right after startup (see
        // generate()), once the assembler has a position for it.
    }

    fn emit_startup(&mut self) {
        let d = self.d;
        self.asm.label("entry");
        // Base registers.
        for (reg, addr) in [
            (6u8, d.wsa),
            (7, d.ptrs),
            (8, d.wsb),
            (9, d.strs),
            (10, d.misc),
        ] {
            self.asm
                .insn(Opcode::Movl, &[Imm(addr), R(Reg::new(reg))], None);
        }
        self.asm.insn(Opcode::Clrl, &[R(Reg::new(5))], None);
        self.asm.insn(Opcode::Clrl, &[R(Reg::new(3))], None);
        // Call-depth budget slot.
        self.asm.insn(
            Opcode::Movl,
            &[
                Lit(8),
                Operand::Disp((d.save_r2() - d.misc) as i32 + 12, Reg::new(10)),
            ],
            None,
        );
        // Walk limit slot.
        self.asm
            .insn(Opcode::Movl, &[Imm(d.wsb_end), R(Reg::new(0))], None);
        self.asm.insn(
            Opcode::Movl,
            &[
                R(Reg::new(0)),
                Operand::Disp((d.wlimit() - d.misc) as i32, Reg::new(10)),
            ],
            None,
        );
        // Pointer table: slots into the hot set.
        for i in 0..16u32 {
            let off = self.rng.gen_range(0..self.p.ws_hot_bytes / 4 - 4) * 4;
            self.asm.insn(
                Opcode::Movab,
                &[Operand::Disp(off as i32, Reg::new(6)), R(Reg::new(0))],
                None,
            );
            self.asm.insn(
                Opcode::Movl,
                &[R(Reg::new(0)), Operand::Disp(i as i32 * 4, Reg::new(7))],
                None,
            );
        }
        // Hot-set data: ~41% odd values (low-bit branch rates), ~44% bit
        // density (bit-branch rates).
        for k in 0..32u32 {
            let odd = self.rng.gen_range(0..100) < 41;
            let v: u32 = (self.rng.gen::<u32>() & 0x5B5B_5B5A) | u32::from(odd);
            let off = self.rng.gen_range(0..self.p.ws_hot_bytes / 4 - 4) * 4;
            let _ = k;
            self.asm.insn(
                Opcode::Movl,
                &[Imm(v), Operand::Disp(off as i32, Reg::new(6))],
                None,
            );
        }
        // Float constants.
        for k in 0..8u32 {
            let v = (1.25f32 + k as f32 * 0.75).to_bits();
            self.asm.insn(
                Opcode::Movl,
                &[
                    Imm(v),
                    Operand::Disp((d.floats() - d.misc + k * 4) as i32, Reg::new(10)),
                ],
                None,
            );
        }
        // User queue head: self-linked.
        self.asm.insn(
            Opcode::Movab,
            &[
                Operand::Disp((d.qhead() - d.misc) as i32, Reg::new(10)),
                R(Reg::new(0)),
            ],
            None,
        );
        self.asm.insn(
            Opcode::Movl,
            &[R(Reg::new(0)), Operand::Deferred(Reg::new(0))],
            None,
        );
        self.asm.insn(
            Opcode::Movl,
            &[R(Reg::new(0)), Operand::Disp(4, Reg::new(0))],
            None,
        );
        self.reset_roving();
        // Outer loop: call the level-0 routines forever.
        self.asm.label("outer");
        let l0: Vec<String> = self.levels[0].clone();
        for target in &l0 {
            self.asm
                .insn(Opcode::Calls, &[Lit(0), Label(target.clone())], None);
        }
        self.asm.insn(Opcode::Chmk, &[Lit(0)], None);
        self.asm.insn(Opcode::Brw, &[], Some("outer"));
        // sub0 sits just past the outer loop, reachable from early routines.
        let first = self.subs[0].clone();
        self.emit_sub(&first);
    }

    fn emit_routine(&mut self, name: &str, level: usize) {
        self.asm.label(name);
        // Entry mask: save R2-R5 (paper: ~8 registers pushed+popped per
        // CALL/RET pair including the frame words).
        self.asm.word(0b0011_1100);
        self.reset_roving();
        self.rebind_index();
        self.advance_walker();
        let n = self.p.body_statements;
        for _ in 0..n {
            let kind = self.sample_kind();
            self.emit_statement(kind, level);
        }
        self.asm.insn(Opcode::Ret, &[], None);
    }

    fn emit_sub(&mut self, name: &str) {
        self.asm.label(name);
        for _ in 0..self.rng.gen_range(2..5u32) {
            if self.rng.gen_bool(0.6) {
                self.stmt_mov();
            } else {
                self.stmt_arith();
            }
        }
        self.asm.insn(Opcode::Rsb, &[], None);
    }

    fn emit_data(&mut self, code_size: u32) {
        let pad = DATA_BASE - (ORIGIN + code_size);
        self.asm.block(pad);
        let d = self.d;
        // pointer table: zeros (initialized at startup).
        self.asm.block(d.strs - d.ptrs);
        // string area: text-like bytes.
        let mut text = vec![b'a'; 1024];
        let words = [
            "the ", "swift ", "editing ", "of ", "program ", "sources ", "and ", "mail ",
        ];
        while text.len() < 2048 {
            let w = words[self.rng.gen_range(0..words.len())];
            text.extend_from_slice(w.as_bytes());
        }
        text.truncate(2048);
        self.asm.bytes(&text);
        // misc: zeros except packed-decimal constants.
        let mut misc = vec![0u8; (d.wsb - d.misc) as usize];
        // Packed +1234567890123456789012345 at `decimals`, 25 digits.
        let dec_off = (d.decimals() - d.misc) as usize;
        for (i, b) in misc[dec_off..dec_off + 13].iter_mut().enumerate() {
            *b = if i == 12 { 0x5C } else { 0x12 + (i as u8 % 8) };
        }
        let dec2 = dec_off + 20;
        for (i, b) in misc[dec2..dec2 + 13].iter_mut().enumerate() {
            *b = if i == 12 { 0x3C } else { 0x09 + (i as u8 % 9) };
        }
        self.asm.bytes(&misc);
        // wsb: zeros.
        self.asm.block(d.wsb_end - d.wsb);
    }

    fn generate(mut self) -> ProcessSpec {
        // Name routines and assign levels.
        let n = self.p.routines.max(4);
        for i in 0..n {
            let level = (i as usize * 4 / n as usize).min(3);
            let name = format!("r{level}_{i}");
            self.levels[level].push(name);
        }
        // Subroutines are emitted interleaved with the routines so BSBW
        // displacements stay within the word range; seed the first two so
        // early routines have targets.
        self.subs.push("sub0".to_string());
        self.emit_startup_subs();
        self.emit_startup();
        let levels = self.levels.clone();
        let mut flat: Vec<(usize, String)> = Vec::new();
        for (level, names) in levels.iter().enumerate() {
            for name in names {
                flat.push((level, name.clone()));
            }
        }
        for (k, (level, name)) in flat.iter().enumerate() {
            self.emit_routine(name, *level);
            if k % 3 == 2 {
                let sub_name = format!("sub{}", self.subs.len());
                self.subs.push(sub_name.clone());
                self.emit_sub(&sub_name);
            }
        }
        // Size the code (data labels are not referenced by code, so this
        // assembles standalone).
        let code_size = self
            .asm
            .assemble()
            .expect("generated code must assemble")
            .bytes
            .len() as u32;
        assert!(
            ORIGIN + code_size <= DATA_BASE,
            "generated code ({code_size} bytes) overflows the data base"
        );
        self.emit_data(code_size);
        let image = self
            .asm
            .assemble()
            .expect("generated program must assemble");
        ProcessSpec::new(image, "entry")
            .with_bss_pages(0)
            .with_stack_pages(16)
    }
}

/// Generate one user process for a profile. Deterministic per seed.
pub fn generate_process(profile: &WorkloadProfile, seed: u64) -> ProcessSpec {
    Gen::new(profile, seed).generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;

    #[test]
    fn generates_valid_program() {
        let p = WorkloadProfile::baseline();
        let spec = generate_process(&p, 42);
        assert!(spec.image.bytes.len() > DATA_BASE as usize - ORIGIN as usize);
        assert!(spec.image.labels.contains_key("entry"));
        assert!(spec.image.labels.contains_key("outer"));
    }

    #[test]
    fn deterministic_per_seed() {
        let p = WorkloadProfile::baseline();
        let a = generate_process(&p, 7);
        let b = generate_process(&p, 7);
        let c = generate_process(&p, 8);
        assert_eq!(a.image.bytes, b.image.bytes);
        assert_ne!(a.image.bytes, c.image.bytes);
    }

    #[test]
    fn decodes_from_entry() {
        let p = WorkloadProfile::baseline();
        let spec = generate_process(&p, 1);
        let entry = spec.image.addr_of("entry");
        let off = (entry - spec.image.origin) as usize;
        let insn = vax_arch::decode(&spec.image.bytes[off..]).unwrap();
        assert_eq!(insn.opcode, vax_arch::Opcode::Movl);
    }
}
