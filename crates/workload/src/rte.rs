//! RTE-style experiment assembly: build a multi-user system for a
//! workload, run it, and form the composite measurement.

use rand::SeedStream;
use vax780::{BootImage, Measurement, ProcessSpec, System, SystemBuilder, SystemConfig};

use crate::codegen::generate_process;
use crate::profile::Workload;

/// Number of simulated user processes per workload. The paper's RTE drove
/// 32–40 terminal users; we model the *active* subset an 8 MB machine
/// timeshares among at once.
pub const PROCESSES_PER_WORKLOAD: usize = 6;

/// The workload-codegen phase in isolation: generate the `nproc` user
/// processes for a system seeded from `seed`, without booting anything.
/// Splitting this from [`boot_system`] lets the harness time (and trace)
/// code generation separately from kernel boot; the per-process seeds are
/// identical to what [`build_system`] has always used.
pub fn shard_processes(workload: Workload, nproc: usize, seed: u64) -> Vec<ProcessSpec> {
    let profile = workload.profile();
    (0..nproc)
        .map(|i| {
            let pseed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64 + 1);
            generate_process(&profile, pseed)
        })
        .collect()
}

/// The kernel-boot phase in isolation: assemble and boot a system from
/// pre-generated processes (see [`shard_processes`]).
pub fn boot_system(processes: Vec<ProcessSpec>) -> System {
    System::from_boot_image(&boot_image(processes))
}

/// [`boot_system`] up to (but not including) rehydration: run the full
/// layout and return the plain-data [`BootImage`]. A warm cache can hold
/// the image (it is `Send` and cheap to clone) and stamp out systems with
/// [`System::from_boot_image`] — the exact path [`boot_system`] takes, so
/// cached boots cannot diverge from cold ones.
pub fn boot_image(processes: Vec<ProcessSpec>) -> BootImage {
    let mut builder = SystemBuilder::new(SystemConfig::default());
    for spec in processes {
        builder.add_process(spec);
    }
    builder.build_image()
}

/// Build a booted system running `workload` with `nproc` generated user
/// processes (seeded deterministically from `seed`).
pub fn build_system(workload: Workload, nproc: usize, seed: u64) -> System {
    boot_system(shard_processes(workload, nproc, seed))
}

/// The seed for replica shard `shard` of workload index `workload_index`
/// in a composite rooted at `root_seed`.
///
/// Seeds are split with [`SeedStream`] (SplitMix64), one nested stream per
/// grid axis, so every `(workload, shard)` cell gets a decorrelated seed
/// that depends only on its coordinates — never on how many shards ran,
/// in what order, or on which thread.
pub fn shard_seed(root_seed: u64, workload_index: u64, shard: u64) -> u64 {
    SeedStream::new(root_seed)
        .stream(workload_index)
        .stream(shard)
        .seed()
}

/// Build the system for one `(workload, shard)` replica of a composite
/// rooted at `root_seed`, with the standard process count.
pub fn build_shard(workload: Workload, workload_index: u64, shard: u64, root_seed: u64) -> System {
    build_system(
        workload,
        PROCESSES_PER_WORKLOAD,
        shard_seed(root_seed, workload_index, shard),
    )
}

/// Run one workload: warm up, then measure `instructions`.
pub fn run_workload(workload: Workload, instructions: u64, seed: u64) -> Measurement {
    let mut system = build_system(workload, PROCESSES_PER_WORKLOAD, seed);
    system.measure(instructions / 10, instructions)
}

/// The paper's composite: the sum of all five workloads' histograms (and
/// counters). `instructions` is the per-workload measurement length;
/// workload `i` runs with [`shard_seed`]`(seed, i, 0)`, matching shard 0
/// of the parallel engine in `vax-bench`.
pub fn composite_measurement(instructions: u64, seed: u64) -> Measurement {
    let mut composite = Measurement::default();
    for (i, &w) in Workload::ALL.iter().enumerate() {
        let m = run_workload(w, instructions, shard_seed(seed, i as u64, 0));
        composite.merge(&m);
    }
    composite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_a_small_measurement() {
        let m = run_workload(Workload::TimesharingResearch, 20_000, 3);
        // Steps include interrupt dispatches; instructions land close.
        assert!(m.instructions() >= 18_000, "{}", m.instructions());
        assert!(m.cpi() > 2.0 && m.cpi() < 40.0, "CPI {}", m.cpi());
        assert_eq!(m.hist.total_cycles(), m.cycles, "cycle conservation");
    }
}
