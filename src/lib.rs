//! # vax780-repro
//!
//! Umbrella crate for the reproduction of Emer & Clark, *A Characterization
//! of Processor Performance in the VAX-11/780* (ISCA 1984). Re-exports the
//! workspace crates and hosts the examples and cross-crate integration
//! tests.
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use upc_monitor;
pub use vax780;
pub use vax_analysis;
pub use vax_arch;
pub use vax_asm;
pub use vax_cpu;
pub use vax_mem;
pub use vax_trace;
pub use vax_workload;
