//! Shape-fidelity regression tests: the qualitative conclusions of the
//! paper must hold in the reproduction (these are the claims EXPERIMENTS.md
//! reports; the tests keep future changes honest).

use upc_monitor::{Activity, CycleClass};
use vax_analysis::Analysis;
use vax_arch::{BranchKind, OpcodeGroup};
use vax_workload::{build_system, Workload};

fn composite() -> (vax_cpu::ControlStore, vax780::Measurement) {
    let mut composite = None;
    let mut cs = None;
    for (i, &w) in Workload::ALL.iter().enumerate() {
        let mut sys = build_system(w, 3, 77 + i as u64);
        let m = sys.measure(8_000, 80_000);
        match &mut composite {
            None => {
                composite = Some(m);
                cs = Some(sys.cpu.cs.clone());
            }
            Some(c) => c.merge(&m),
        }
    }
    (cs.unwrap(), composite.unwrap())
}

#[test]
fn paper_conclusions_hold() {
    let (cs, m) = composite();
    let a = Analysis::new(&cs, &m);

    // "The average VAX instruction ... takes a little more than 10 cycles"
    // — we land in the same regime.
    assert!(a.cpi() > 6.0 && a.cpi() < 14.0, "CPI {}", a.cpi());

    // "Almost half of all the time went into decode and specifier
    // processing, counting their stalls."
    let front_end = a.row_total(Activity::Decode)
        + a.row_total(Activity::Spec1)
        + a.row_total(Activity::Spec26)
        + a.row_total(Activity::BDisp);
    let share = front_end / a.cpi();
    assert!(share > 0.35 && share < 0.60, "front-end share {share}");

    // "The opcode group with the greatest contribution is the CALL/RET
    // group, despite its low frequency."
    let exec_rows = [
        Activity::ExecSimple,
        Activity::ExecField,
        Activity::ExecFloat,
        Activity::ExecCallRet,
        Activity::ExecSystem,
        Activity::ExecCharacter,
        Activity::ExecDecimal,
    ];
    let callret = a.row_total(Activity::ExecCallRet);
    let max_other = exec_rows
        .iter()
        .filter(|&&r| r != Activity::ExecCallRet && r != Activity::ExecSimple)
        .map(|&r| a.row_total(r))
        .fold(0.0f64, f64::max);
    assert!(
        callret > max_other,
        "CALL/RET row {callret} should exceed other complex groups ({max_other})"
    );
    let groups = a.group_percent();
    assert!(
        groups[OpcodeGroup::CallRet.index()] < 6.0,
        "...while staying rare"
    );

    // "Moves, branches, and simple instructions account for most
    // instruction executions."
    assert!(groups[OpcodeGroup::Simple.index()] > 75.0);

    // "About 9 out of 10 loop branches actually branched."
    let loops_exec = m.cpu_stats.branch_executed_of(BranchKind::Loop);
    let loops_taken = m.cpu_stats.branch_taken_of(BranchKind::Loop);
    if loops_exec > 100 {
        let rate = loops_taken as f64 / loops_exec as f64;
        assert!(rate > 0.80 && rate < 0.97, "loop taken rate {rate}");
    }

    // "The range of cycle time requirements ... covers two orders of
    // magnitude": CHARACTER per-instruction cost vs SIMPLE.
    let simple_per =
        a.row_total(Activity::ExecSimple) / (groups[OpcodeGroup::Simple.index()] / 100.0);
    let char_freq = groups[OpcodeGroup::Character.index()] / 100.0;
    if char_freq > 0.0005 {
        let char_per = a.row_total(Activity::ExecCharacter) / char_freq;
        assert!(
            char_per / simple_per > 25.0,
            "character {char_per} vs simple {simple_per}"
        );
    }

    // Stall columns are a substantial minority of total time.
    let stalls = a.col_total(CycleClass::ReadStall)
        + a.col_total(CycleClass::WriteStall)
        + a.col_total(CycleClass::IbStall);
    let stall_share = stalls / a.cpi();
    assert!(
        stall_share > 0.08 && stall_share < 0.40,
        "stall share {stall_share}"
    );
}

#[test]
fn tb_miss_service_near_paper() {
    let (cs, m) = composite();
    let a = Analysis::new(&cs, &m);
    let misses = m.mem_stats.total_tb_misses();
    assert!(misses > 100, "need TB misses to measure service time");
    let service = a.tb_miss_cycles as f64 / misses as f64;
    // Paper: 21.6 cycles average.
    assert!(
        service > 17.0 && service < 27.0,
        "TB miss service {service} cycles"
    );
}
