//! Property tests for the span-tree invariants behind `vax_trace`
//! (see `docs/OBSERVABILITY.md`).
//!
//! The trace artifacts are only trustworthy if the emitter's structural
//! promises hold for *every* recording pattern, not just the pipeline's
//! happy path: child span intervals must nest inside their parents,
//! per-phase totals must agree with the spans they summarize (and the
//! children of the root must sum to no more than the root itself), and
//! every serialized trace must pass the same `trace-check` validator CI
//! runs against real runs. These tests drive randomized span trees —
//! random fan-out, depth, and track interleavings — through the real
//! tracer and check those invariants on the result.

use std::collections::BTreeMap;

use rand::prelude::{Rng, SeedableRng, StdRng};
use vax_bench::tracecheck::{check_trace_text, KNOWN_PHASES};
use vax_trace::{worker_tid, SpanId, SpanRec, Tracer, MAIN_TID};

/// Grow a random subtree of spans under the current stack top of `tid`.
/// Phase names come from the checker's known list so the serialized trace
/// is also `trace-check`-clean. Returns the number of spans opened.
fn grow_tree(tracer: &Tracer, rng: &mut StdRng, tid: u64, depth: usize) -> usize {
    if depth == 0 {
        return 0;
    }
    let mut opened = 0;
    for _ in 0..rng.gen_range(1usize..4) {
        let name = KNOWN_PHASES[rng.gen_range(0usize..KNOWN_PHASES.len())];
        let guard = tracer.span(tid, name, vec![("depth", (depth as u64).into())]);
        opened += 1;
        if rng.gen_bool(0.6) {
            opened += grow_tree(tracer, rng, tid, depth - 1);
        }
        drop(guard);
    }
    opened
}

/// Index spans by id for parent lookups.
fn by_id(spans: &[SpanRec]) -> BTreeMap<SpanId, &SpanRec> {
    spans.iter().map(|s| (s.id, s)).collect()
}

/// Assert every child's interval nests inside its parent's.
fn assert_nesting(spans: &[SpanRec]) {
    let index = by_id(spans);
    for s in spans {
        if s.parent == 0 {
            continue;
        }
        let p = index
            .get(&s.parent)
            .unwrap_or_else(|| panic!("span {} has unknown parent {}", s.id, s.parent));
        assert!(
            s.start_us >= p.start_us && s.end_us <= p.end_us,
            "child '{}' [{}, {}] escapes parent '{}' [{}, {}]",
            s.name,
            s.start_us,
            s.end_us,
            p.name,
            p.start_us,
            p.end_us
        );
    }
}

#[test]
fn random_span_trees_nest_within_parents() {
    for seed in 0u64..20 {
        let mut rng = StdRng::seed_from_u64(seed);
        let tracer = Tracer::enabled();
        let root = tracer.span(MAIN_TID, "run", vec![]);
        let opened = grow_tree(&tracer, &mut rng, MAIN_TID, 3);
        drop(root);

        let spans = tracer.spans();
        assert_eq!(spans.len(), opened + 1, "seed {seed}: all spans closed");
        assert_nesting(&spans);
        // Exactly one root, and it is the run span.
        let roots: Vec<_> = spans.iter().filter(|s| s.parent == 0).collect();
        assert_eq!(roots.len(), 1, "seed {seed}");
        assert_eq!(roots[0].name, "run");
    }
}

#[test]
fn phase_totals_agree_with_spans_and_root_bounds_children() {
    for seed in 100u64..110 {
        let mut rng = StdRng::seed_from_u64(seed);
        let tracer = Tracer::enabled();
        let root = tracer.span(MAIN_TID, "run", vec![]);
        grow_tree(&tracer, &mut rng, MAIN_TID, 3);
        drop(root);

        let spans = tracer.spans();
        // Per-phase totals must be exactly the sum over spans of that name.
        let mut want: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for s in &spans {
            let e = want.entry(s.name.clone()).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_us();
        }
        let got = tracer.phase_totals();
        assert_eq!(got.len(), want.len(), "seed {seed}");
        for (name, (count, total)) in &want {
            let t = &got[name];
            assert_eq!(t.count, *count, "seed {seed}: count of '{name}'");
            assert_eq!(t.total_us, *total, "seed {seed}: total of '{name}'");
        }

        // Direct children of the root run strictly inside it and never
        // overlap (same track, stack discipline), so their durations sum
        // to at most the root's — the root is the whole run, the
        // children are its phases, and the difference is untraced gap.
        let index = by_id(&spans);
        let root_rec = spans.iter().find(|s| s.parent == 0).unwrap();
        let child_sum: u64 = spans
            .iter()
            .filter(|s| s.parent == root_rec.id)
            .map(|s| s.dur_us())
            .sum();
        assert!(
            child_sum <= root_rec.dur_us(),
            "seed {seed}: children ({child_sum} µs) exceed root ({} µs)",
            root_rec.dur_us()
        );
        // Sanity: the index covers every parent reference.
        assert!(spans
            .iter()
            .all(|s| s.parent == 0 || index.contains_key(&s.parent)));
    }
}

#[test]
fn interleaved_worker_tracks_serialize_to_a_valid_trace() {
    for seed in 200u64..210 {
        let mut rng = StdRng::seed_from_u64(seed);
        let tracer = Tracer::enabled();
        tracer.set_thread_name(MAIN_TID, "main");
        let run = tracer.span(MAIN_TID, "run", vec![]);

        // Simulate a few workers interleaving: queue waits as complete
        // spans, then a job/cell subtree, the way the pool records them.
        for w in 0..rng.gen_range(1usize..4) {
            let tid = worker_tid(w);
            tracer.set_thread_name(tid, &format!("worker-{w}"));
            for _ in 0..rng.gen_range(1usize..4) {
                let wait_start = tracer.now_us();
                tracer.complete(tid, "queue-wait", wait_start, vec![]);
                let job = tracer.span_under(tid, "job", run.id(), vec![]);
                grow_tree(&tracer, &mut rng, tid, 2);
                drop(job);
                if rng.gen_bool(0.3) {
                    tracer.instant(tid, "retry", vec![]);
                    tracer.count(tid, "retries", 1);
                }
            }
        }
        drop(run);

        assert_nesting(&tracer.spans());
        let summary = check_trace_text(&tracer.chrome_trace())
            .unwrap_or_else(|e| panic!("seed {seed}: emitted trace failed trace-check: {e}"));
        assert_eq!(summary.spans, tracer.spans().len(), "seed {seed}");
    }
}

#[test]
fn panic_unwind_still_yields_balanced_traces() {
    // A panic mid-tree (caught, as the pool catches shard panics) must
    // not leave the serialized trace unbalanced: guards drop during
    // unwind, and `end` closes any spans a skipped guard left open.
    for seed in 300u64..305 {
        let mut rng = StdRng::seed_from_u64(seed);
        let tracer = Tracer::enabled();
        let root = tracer.span(MAIN_TID, "run", vec![]);
        let t = tracer.clone();
        let mut r = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _job = t.span(MAIN_TID, "job", vec![]);
            grow_tree(&t, &mut r, MAIN_TID, 2);
            let _cell = t.span(MAIN_TID, "cell", vec![]);
            panic!("injected");
        }));
        grow_tree(&tracer, &mut rng, MAIN_TID, 2);
        drop(root);

        assert_nesting(&tracer.spans());
        check_trace_text(&tracer.chrome_trace())
            .unwrap_or_else(|e| panic!("seed {seed}: post-panic trace invalid: {e}"));
    }
}
