//! Property tests over the measurement pipeline.

use proptest::prelude::*;
use upc_monitor::{Histogram, MicroPc, Plane};

proptest! {
    #[test]
    fn histogram_totals_match_recordings(
        events in proptest::collection::vec((0u16..16384, any::<bool>(), 1u64..100), 0..200)
    ) {
        let mut h = Histogram::new_16k();
        h.start();
        let mut expect = 0u64;
        for (upc, stalled, n) in &events {
            let plane = if *stalled { Plane::Stalled } else { Plane::Normal };
            h.record_n(MicroPc(*upc), plane, *n);
            expect += n;
        }
        prop_assert_eq!(h.total_cycles(), expect);
        prop_assert_eq!(
            h.plane_total(Plane::Normal) + h.plane_total(Plane::Stalled),
            expect
        );
    }

    #[test]
    fn merge_is_additive(
        a in proptest::collection::vec((0u16..16384, 1u64..50), 0..50),
        b in proptest::collection::vec((0u16..16384, 1u64..50), 0..50),
    ) {
        let mut ha = Histogram::new_16k();
        let mut hb = Histogram::new_16k();
        ha.start();
        hb.start();
        for (upc, n) in &a {
            ha.record_n(MicroPc(*upc), Plane::Normal, *n);
        }
        for (upc, n) in &b {
            hb.record_n(MicroPc(*upc), Plane::Normal, *n);
        }
        let ta = ha.total_cycles();
        let tb = hb.total_cycles();
        ha.merge(&hb);
        prop_assert_eq!(ha.total_cycles(), ta + tb);
    }

    #[test]
    fn assembler_roundtrips_through_decoder(
        iters in 1u32..60,
        disp in 0i32..120,
    ) {
        use vax_arch::{decode, Opcode, Reg};
        use vax_asm::{Asm, Operand};
        let mut asm = Asm::new(0x200);
        asm.label("entry");
        asm.insn(Opcode::Movl, &[Operand::Imm(iters), Operand::Reg(Reg::new(2))], None);
        asm.label("l");
        asm.insn(
            Opcode::Addl2,
            &[Operand::Lit(1), Operand::Disp(disp * 4, Reg::new(6))],
            None,
        );
        asm.insn(Opcode::Sobgtr, &[Operand::Reg(Reg::new(2))], Some("l"));
        let img = asm.assemble().unwrap();
        // Every instruction in the image decodes cleanly in sequence.
        let mut at = 0usize;
        let mut count = 0;
        while at < img.bytes.len() {
            let insn = decode(&img.bytes[at..]).unwrap();
            at += insn.len as usize;
            count += 1;
        }
        prop_assert_eq!(count, 3);
    }
}
