//! Property tests over the measurement pipeline, driven by seeded random
//! cases (the offline build environment has no proptest; 256 deterministic
//! random cases per property give equivalent coverage for these small state
//! spaces).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use upc_monitor::{Histogram, MicroPc, Plane};

const CASES: u64 = 256;

#[test]
fn histogram_totals_match_recordings() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_events = rng.gen_range(0..200usize);
        let mut h = Histogram::new_16k();
        h.start();
        let mut expect = 0u64;
        for _ in 0..n_events {
            let upc = MicroPc(rng.gen_range(0..16384u16));
            let plane = if rng.gen_bool(0.5) {
                Plane::Stalled
            } else {
                Plane::Normal
            };
            let n = rng.gen_range(1..100u64);
            h.record_n(upc, plane, n);
            expect += n;
        }
        assert_eq!(h.total_cycles(), expect);
        assert_eq!(
            h.plane_total(Plane::Normal) + h.plane_total(Plane::Stalled),
            expect
        );
    }
}

#[test]
fn merge_is_additive() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        let mut ha = Histogram::new_16k();
        let mut hb = Histogram::new_16k();
        ha.start();
        hb.start();
        for _ in 0..rng.gen_range(0..50usize) {
            ha.record_n(
                MicroPc(rng.gen_range(0..16384u16)),
                Plane::Normal,
                rng.gen_range(1..50u64),
            );
        }
        for _ in 0..rng.gen_range(0..50usize) {
            hb.record_n(
                MicroPc(rng.gen_range(0..16384u16)),
                Plane::Normal,
                rng.gen_range(1..50u64),
            );
        }
        let ta = ha.total_cycles();
        let tb = hb.total_cycles();
        ha.merge(&hb);
        assert_eq!(ha.total_cycles(), ta + tb);
    }
}

#[test]
fn assembler_roundtrips_through_decoder() {
    use vax_arch::{decode, Opcode, Reg};
    use vax_asm::{Asm, Operand};
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(77));
        let iters = rng.gen_range(1..60u32);
        let disp = rng.gen_range(0..120i32);
        let mut asm = Asm::new(0x200);
        asm.label("entry");
        asm.insn(
            Opcode::Movl,
            &[Operand::Imm(iters), Operand::Reg(Reg::new(2))],
            None,
        );
        asm.label("l");
        asm.insn(
            Opcode::Addl2,
            &[Operand::Lit(1), Operand::Disp(disp * 4, Reg::new(6))],
            None,
        );
        asm.insn(Opcode::Sobgtr, &[Operand::Reg(Reg::new(2))], Some("l"));
        let img = asm.assemble().unwrap();
        // Every instruction in the image decodes cleanly in sequence.
        let mut at = 0usize;
        let mut count = 0;
        while at < img.bytes.len() {
            let insn = decode(&img.bytes[at..]).unwrap();
            at += insn.len as usize;
            count += 1;
        }
        assert_eq!(count, 3);
    }
}
