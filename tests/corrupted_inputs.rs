//! Corrupted-input suite: every import path must reject damaged data with
//! a typed error naming the defect — never panic, never silently accept.
//!
//! The paths under test are the ones a crash or a truncated download can
//! actually feed garbage into: the JSON parser behind every artifact
//! import, the time-series CSV importer, the checkpoint cell codec, and
//! the run-directory diff engine.

use std::path::{Path, PathBuf};

use vax780::TimeSeries;
use vax_analysis::{cell_from_json, timeseries_from_json, Json, Tolerance};
use vax_bench::diffcmd;

#[test]
fn json_parser_rejects_truncated_and_garbage_documents() {
    for bad in [
        "",
        "{",
        "{\"a\": ",
        "{\"a\": 1,}",
        "[1, 2",
        "\"unterminated",
        "nul",
        "{\"a\" 1}",
        "{\"a\": 1} trailing",
        "{\"n\": 1e}",
    ] {
        assert!(Json::parse(bad).is_err(), "accepted '{bad}'");
    }
}

#[test]
fn json_parser_rejects_duplicate_keys_with_position() {
    let err = Json::parse("{\"cycles\": 1, \"cycles\": 2}").unwrap_err();
    assert!(err.contains("duplicate key 'cycles'"), "{err}");
    assert!(err.contains("byte"), "carries the offset: {err}");
    // Nested duplicates are caught too.
    assert!(Json::parse("{\"a\": {\"b\": 1, \"b\": 2}}").is_err());
}

#[test]
fn timeseries_csv_importer_names_the_offending_line() {
    let header = TimeSeries::default().to_csv();
    let header = header.trim_end();

    for (body, expect) in [
        ("1,2,3", "expected 13 fields"),
        ("0,100,100,x,0.0,0,0,0,0,0,0,0,0", "bad integer"),
        ("0,100,99,9,0.0,0,0,0,0,0,0,0,0", "cycles column disagrees"),
        (
            "100,50,0,9,0.0,0,0,0,0,0,0,0,0",
            "end_cycle precedes start_cycle",
        ),
    ] {
        let text = format!("{header}\n{body}\n");
        let err = TimeSeries::from_csv(&text).unwrap_err();
        assert!(err.contains(expect), "'{body}' -> {err}");
        assert!(err.contains("line 2"), "'{body}' -> {err}");
    }
    assert!(TimeSeries::from_csv("not,a,header\n")
        .unwrap_err()
        .contains("header"));
    assert!(TimeSeries::from_csv("").is_err());
}

#[test]
fn timeseries_json_importer_rejects_wrong_shapes() {
    for bad in [
        "null",
        "[]",
        "{\"samples\": 3}",
        "{\"samples\": [{\"start_cycle\": 0}]}",
    ] {
        let j = Json::parse(bad).unwrap();
        assert!(timeseries_from_json(&j).is_err(), "accepted '{bad}'");
    }
}

#[test]
fn checkpoint_codec_rejects_structural_damage() {
    for bad in [
        "{}",
        "{\"format_version\": 1}",
        "{\"format_version\": 2, \"workload\": 0}",
    ] {
        let j = Json::parse(bad).unwrap();
        assert!(cell_from_json(&j).is_err(), "accepted '{bad}'");
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("corrupt-inputs-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden-small")
}

fn copy_fixture_to(dir: &Path) {
    for entry in std::fs::read_dir(fixture_dir()).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
}

/// The per-file verdict for `name`, which must be present in the diff.
fn report_for<'a>(diffs: &'a [diffcmd::FileDiff], name: &str) -> &'a diffcmd::FileDiff {
    diffs.iter().find(|d| d.file == name).unwrap()
}

#[test]
fn diff_engine_reports_truncated_artifacts_instead_of_panicking() {
    let dir = scratch("truncated");
    copy_fixture_to(&dir);
    let manifest = dir.join("manifest.json");
    let text = std::fs::read_to_string(&manifest).unwrap();
    std::fs::write(&manifest, &text[..text.len() / 2]).unwrap();

    let diffs = diffcmd::diff_run_dirs(&fixture_dir(), &dir, &Tolerance::exact()).unwrap();
    let d = report_for(&diffs, "manifest.json");
    let err = d.report.as_ref().unwrap_err();
    assert!(err.contains("manifest.json"), "{err}");
    assert!(!d.is_clean(), "a torn artifact must fail the gate");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn diff_engine_reports_missing_artifacts_instead_of_panicking() {
    let dir = scratch("missing");
    copy_fixture_to(&dir);
    std::fs::remove_file(dir.join("measurement.json")).unwrap();

    let diffs = diffcmd::diff_run_dirs(&fixture_dir(), &dir, &Tolerance::exact()).unwrap();
    let d = report_for(&diffs, "measurement.json");
    let err = d.report.as_ref().unwrap_err();
    assert!(err.contains("missing in candidate"), "{err}");
    assert!(!d.is_clean(), "a missing artifact must fail the gate");
    std::fs::remove_dir_all(&dir).unwrap();
}
