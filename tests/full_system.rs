//! Cross-crate integration tests: full-system runs checked end to end.

use vax780::{ProcessSpec, SystemBuilder, SystemConfig};
use vax_analysis::Analysis;
use vax_asm::parse;
use vax_workload::{build_system, generate_process, Workload, WorkloadProfile};

fn text_system(source: &str) -> vax780::System {
    let image = parse(source, 0x200).expect("assembly failed");
    let mut b = SystemBuilder::new(SystemConfig::default());
    b.add_process(ProcessSpec::new(image, "entry").with_bss_pages(32));
    b.build()
}

#[test]
fn assembled_program_computes_correctly() {
    // Sum 1..=10 into R0, store at absolute 4096, halt-free loop after.
    let src = r#"
        entry:  CLRL R0
                MOVL #10, R2
        sum:    ADDL2 R2, R0
                SOBGTR R2, sum
                MOVL R0, @#4096
        spin:   BRB spin
    "#;
    let mut sys = text_system(src);
    sys.run_instructions(5_000);
    let pa = sys.cpu.mem.raw_translate(vax_mem::VirtAddr(4096)).unwrap();
    assert_eq!(sys.cpu.mem.value_read(pa, 4), 55);
}

#[test]
fn histogram_conserves_every_cycle() {
    let mut sys = build_system(Workload::TimesharingResearch, 3, 11);
    let m = sys.measure(5_000, 60_000);
    let a = Analysis::new(&sys.cpu.cs, &m);
    a.check_conservation().unwrap();
    // Row/column sums equal the grand total.
    let rows: f64 = upc_monitor::Activity::ALL
        .iter()
        .map(|&x| a.row_total(x))
        .sum();
    let cols: f64 = upc_monitor::CycleClass::ALL
        .iter()
        .map(|&c| a.col_total(c))
        .sum();
    assert!((rows - a.cpi()).abs() < 1e-9);
    assert!((cols - a.cpi()).abs() < 1e-9);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut sys = build_system(Workload::Educational, 3, 5);
        let m = sys.measure(2_000, 30_000);
        (m.cycles, m.cpu_stats.instructions, m.mem_stats.d_reads)
    };
    assert_eq!(run(), run(), "simulation must be exactly reproducible");
}

#[test]
fn context_switch_flushes_tb_process_half() {
    let mut sys = build_system(Workload::TimesharingResearch, 3, 9);
    let m = sys.measure(5_000, 150_000);
    assert!(m.cpu_stats.context_switches >= 1, "switches must happen");
    // Every switch forces process-half TB refills: misses scale with
    // switches at minimum.
    assert!(
        m.mem_stats.total_tb_misses() > m.cpu_stats.context_switches * 8,
        "TB misses {} vs switches {}",
        m.mem_stats.total_tb_misses(),
        m.cpu_stats.context_switches
    );
}

#[test]
fn composite_statistics_land_near_paper_shape() {
    // A short composite: assert loose bands, not exact values — the point
    // is that the shape of the characterization holds even on small runs.
    let mut composite = None;
    let mut cs = None;
    for (i, &w) in Workload::ALL.iter().enumerate() {
        let mut sys = build_system(w, 3, 21 + i as u64);
        let m = sys.measure(5_000, 60_000);
        match &mut composite {
            None => {
                composite = Some(m);
                cs = Some(sys.cpu.cs.clone());
            }
            Some(c) => c.merge(&m),
        }
    }
    let a = Analysis::new(cs.as_ref().unwrap(), &composite.unwrap());
    // CPI in the high single digits to low tens.
    assert!(a.cpi() > 5.0 && a.cpi() < 16.0, "CPI {}", a.cpi());
    // SIMPLE dominates the mix, as in Table 1.
    let groups = a.group_percent();
    assert!(groups[0] > 75.0 && groups[0] < 95.0, "SIMPLE {}", groups[0]);
    // Decode row is exactly one compute cycle per instruction.
    let decode = a.cell(
        upc_monitor::Activity::Decode,
        upc_monitor::CycleClass::Compute,
    );
    assert!((decode - 1.0).abs() < 1e-9);
    // Reads outnumber writes roughly two to one (§3.3.1).
    let reads = a.col_total(upc_monitor::CycleClass::Read);
    let writes = a.col_total(upc_monitor::CycleClass::Write);
    assert!(
        reads / writes > 1.0 && reads / writes < 3.5,
        "{reads}/{writes}"
    );
}

#[test]
fn per_workload_profiles_differ_in_character() {
    let cpi_of = |w: Workload, seed| {
        let mut sys = build_system(w, 3, seed);
        let m = sys.measure(5_000, 60_000);
        let a = Analysis::new(&sys.cpu.cs, &m);
        (a.group_percent(), a.cpi())
    };
    let (sci, _) = cpi_of(Workload::SciEng, 31);
    let (com, _) = cpi_of(Workload::Commercial, 32);
    // FLOAT leads in sci/eng, CHARACTER+DECIMAL in commercial.
    assert!(sci[vax_arch::OpcodeGroup::Float.index()] > com[vax_arch::OpcodeGroup::Float.index()]);
    assert!(
        com[vax_arch::OpcodeGroup::Character.index()]
            > sci[vax_arch::OpcodeGroup::Character.index()]
    );
}

#[test]
fn generated_workloads_never_fault_long_run() {
    let profile = WorkloadProfile::baseline();
    let mut b = SystemBuilder::new(SystemConfig::default());
    for i in 0..4 {
        b.add_process(generate_process(&profile, 1000 + i));
    }
    let mut sys = b.build();
    assert!(sys.run_instructions(400_000), "must not halt or fault");
}
