//! The run-diff regression engine against the committed golden fixture.
//!
//! `tests/fixtures/golden-small` is a real exported run
//! (`reproduce --instructions 2000 --seed 1984 --interval-cycles 5000
//! --format json --profile --out …`). These tests prove the CI gate works:
//! the fixture diffs clean against itself and against a fresh simulation
//! with the same parameters (fixture freshness), an injected delta is
//! caught, and the time-series export formats round-trip exactly.

use std::path::{Path, PathBuf};

use rand::prelude::{Rng, SeedableRng, StdRng};
use vax780::{IntervalSample, TimeSeries};
use vax_analysis::{diff_json, timeseries_from_json, Json, Profile, Tolerance};
use vax_bench::cli::Options;
use vax_bench::diffcmd::{diff_run_dirs, FileDiff};
use vax_bench::progress::{Progress, Verbosity};
use vax_bench::runner;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden-small")
}

/// The parameters `golden-small` was generated with (see docs/TELEMETRY.md).
fn fixture_options() -> Options {
    Options {
        instructions: 2000,
        seed: 1984,
        interval_cycles: 5000,
        ..Options::default()
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("vax-diff-engine-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn copy_fixture_to(dir: &Path) {
    for entry in std::fs::read_dir(fixture_dir()).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
}

#[test]
fn fixture_diffs_clean_against_itself() {
    let diffs = diff_run_dirs(&fixture_dir(), &fixture_dir(), &Tolerance::exact()).unwrap();
    assert!(
        diffs.len() >= 5,
        "fixture should carry the full artifact set, got {}",
        diffs.len()
    );
    for d in &diffs {
        assert!(d.is_clean(), "{} not clean: {:?}", d.file, d.report);
    }
}

#[test]
fn injected_delta_is_caught_and_tolerance_releases_it() {
    let dir = scratch_dir("inject");
    copy_fixture_to(&dir);
    // Perturb one counter in measurement.json by one part in a thousand.
    let path = dir.join("measurement.json");
    let mut j = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let cycles = j.get("cycles").and_then(Json::as_i64).unwrap();
    let bumped = cycles + (cycles / 1000).max(1);
    if let Json::Obj(members) = &mut j {
        for (k, v) in members.iter_mut() {
            if k == "cycles" {
                *v = Json::Int(bumped);
            }
        }
    }
    std::fs::write(&path, j.to_string_pretty()).unwrap();

    let diffs = diff_run_dirs(&fixture_dir(), &dir, &Tolerance::exact()).unwrap();
    let m = diffs
        .iter()
        .find(|d| d.file == "measurement.json")
        .expect("measurement compared");
    assert!(!m.is_clean(), "injected cycle drift must be flagged");
    assert!(
        diffs
            .iter()
            .filter(|d| d.file != "measurement.json")
            .all(FileDiff::is_clean),
        "only the perturbed artifact drifts"
    );
    // A 1% relative tolerance swallows a 0.1% injected delta.
    let relaxed = diff_run_dirs(&fixture_dir(), &dir, &Tolerance::new(0.0, 0.01)).unwrap();
    assert!(relaxed.iter().all(FileDiff::is_clean));
}

#[test]
fn missing_artifact_fails_even_with_loose_tolerance() {
    let dir = scratch_dir("missing");
    copy_fixture_to(&dir);
    std::fs::remove_file(dir.join("validation.json")).unwrap();
    let diffs = diff_run_dirs(&fixture_dir(), &dir, &Tolerance::new(1e9, 1.0)).unwrap();
    let v = diffs
        .iter()
        .find(|d| d.file == "validation.json")
        .expect("absence is reported, not skipped");
    assert!(!v.is_clean());
}

/// Regenerate the fixture's run in-process and diff it against the committed
/// artifacts: proves the golden fixture is fresh, i.e. the simulator still
/// produces byte-identical telemetry for the recorded parameters. If this
/// fails after an intentional model change, regenerate the fixture (see
/// docs/TELEMETRY.md).
#[test]
fn committed_fixture_matches_a_fresh_run() {
    let opts = fixture_options();
    let progress = Progress::new(Verbosity::Quiet);
    let out = runner::run_composite(&opts, &progress);
    assert!(out.conservation_err.is_none());
    assert!(out.validation.is_clean());

    let manifest = vax_analysis::RunManifest {
        experiment: opts.experiment.clone(),
        seed: Some(opts.seed),
        instructions: opts.instructions,
        warmup: opts.instructions / 10,
        interval_cycles: opts.interval_cycles,
        shards: opts.shards,
        config: "default VAX-11/780 configuration, 5-workload composite".to_string(),
        fault_seed: opts.fault_seed,
        fault_classes: opts
            .fault_classes
            .iter()
            .map(|c| c.name().to_string())
            .collect(),
        degraded: out.degraded,
        failed_cells: out
            .failed_cells
            .iter()
            .map(|(w, s)| (w.name().to_string(), *s))
            .collect(),
    };
    let dir = scratch_dir("fresh");
    for (name, body) in
        vax_analysis::run_artifacts(&manifest, &out.analysis, &out.series, &out.validation)
    {
        std::fs::write(dir.join(name), body).unwrap();
    }
    let profile = Profile::new(&out.cs.map, &out.analysis.m.hist);
    std::fs::write(dir.join("profile.folded"), profile.folded()).unwrap();
    std::fs::write(
        dir.join("profile.json"),
        profile.to_json().to_string_pretty(),
    )
    .unwrap();

    let diffs = diff_run_dirs(&fixture_dir(), &dir, &Tolerance::exact()).unwrap();
    for d in &diffs {
        assert!(
            d.is_clean(),
            "{} drifted from the committed golden run — regenerate the fixture \
             if the simulator changed intentionally: {:?}",
            d.file,
            d.report
        );
    }
    // The folded stacks are not JSON, so compare them directly.
    let committed = std::fs::read_to_string(fixture_dir().join("profile.folded")).unwrap();
    let fresh = std::fs::read_to_string(dir.join("profile.folded")).unwrap();
    assert_eq!(committed, fresh, "profile.folded drifted");
}

/// Property test: a randomized-but-valid TimeSeries survives CSV export →
/// parse → re-export byte-for-byte, and the JSON artifact parses back to a
/// series whose re-export is byte-identical too.
#[test]
fn timeseries_exports_roundtrip_exactly() {
    let mut rng = StdRng::seed_from_u64(0x780);
    for case in 0..50 {
        let mut series = TimeSeries::default();
        let mut cycle = 0u64;
        let n = rng.gen_range(1usize..12);
        for _ in 0..n {
            let len = rng.gen_range(1u64..100_000);
            let mut delta = vax780::Measurement {
                cycles: len,
                ..vax780::Measurement::default()
            };
            // Instructions stay nonzero so the derived CPI column is finite.
            delta.cpu_stats.instructions = rng.gen_range(1u64..len + 1);
            delta.cpu_stats.hw_interrupts = rng.gen_range(0u64..50);
            delta.cpu_stats.context_switches = rng.gen_range(0u64..20);
            delta.mem_stats.read_stall_cycles = rng.gen_range(0u64..len / 2 + 1);
            delta.mem_stats.write_stall_cycles = rng.gen_range(0u64..len / 2 + 1);
            delta.mem_stats.i_reads = rng.gen_range(0u64..len + 1);
            delta.mem_stats.d_read_misses = rng.gen_range(0u64..1000);
            delta.mem_stats.tb_miss_d = rng.gen_range(0u64..500);
            series.samples.push(IntervalSample {
                start_cycle: cycle,
                end_cycle: cycle + len,
                delta,
            });
            cycle += len;
        }

        let csv = series.to_csv();
        let reparsed = TimeSeries::from_csv(&csv)
            .unwrap_or_else(|e| panic!("case {case}: csv parse failed: {e}"));
        assert_eq!(reparsed.to_csv(), csv, "case {case}: csv not byte-stable");

        let json = vax_analysis::timeseries_json(&series);
        let parsed = Json::parse(&json.to_string_pretty()).unwrap();
        let back = timeseries_from_json(&parsed)
            .unwrap_or_else(|e| panic!("case {case}: json parse failed: {e}"));
        assert_eq!(
            vax_analysis::timeseries_json(&back).to_string_pretty(),
            json.to_string_pretty(),
            "case {case}: json not byte-stable"
        );
        // And the two import paths agree with each other.
        assert_eq!(back.to_csv(), reparsed.to_csv(), "case {case}");
        let report = diff_json(
            &json,
            &vax_analysis::timeseries_json(&reparsed),
            &Tolerance::exact(),
        );
        assert!(report.is_clean(), "case {case}: {}", report.render());
    }
}
