//! Property tests for the merge laws behind the deterministic parallel
//! reduction (see `docs/PARALLELISM.md`).
//!
//! The sharded engine's guarantee — `--jobs N` is byte-identical to
//! `--jobs 1` — rests on every result block being a commutative monoid
//! under `Mergeable::merge_from` with `Default::default()` as identity.
//! These tests exercise the laws on randomized instances of all four
//! blocks: [`Histogram`], [`CpuStats`], [`MemStats`], and [`Measurement`].

use rand::prelude::{Rng, SeedableRng, StdRng};
use upc_monitor::{Histogram, MicroPc, Plane};
use vax780::{merge_ordered, Measurement, Mergeable};
use vax_cpu::CpuStats;
use vax_mem::MemStats;

fn rand_hist(rng: &mut StdRng) -> Histogram {
    // Real board geometry: Default is 16 K buckets and merge requires
    // matching sizes, so the identity law only makes sense at full size.
    let mut h = Histogram::default();
    h.start();
    for _ in 0..rng.gen_range(1usize..40) {
        let upc = MicroPc(rng.gen_range(0u16..16_384));
        let plane = if rng.gen_bool(0.7) {
            Plane::Normal
        } else {
            Plane::Stalled
        };
        h.record_n(upc, plane, rng.gen_range(1u64..1000));
    }
    h.stop();
    h
}

fn rand_cpu(rng: &mut StdRng) -> CpuStats {
    let mut c = CpuStats::new();
    c.instructions = rng.gen_range(0u64..1 << 40);
    c.istream_bytes = rng.gen_range(0u64..1 << 40);
    c.hw_interrupts = rng.gen_range(0u64..1 << 20);
    c.sw_interrupts = rng.gen_range(0u64..1 << 20);
    c.sw_interrupt_requests = rng.gen_range(0u64..1 << 20);
    c.machine_checks = rng.gen_range(0u64..1 << 20);
    c.context_switches = rng.gen_range(0u64..1 << 20);
    c.exceptions = rng.gen_range(0u64..1 << 20);
    c.spec1_count = rng.gen_range(0u64..1 << 30);
    c.spec26_count = rng.gen_range(0u64..1 << 30);
    c.spec1_quad_repeats = rng.gen_range(0u64..1 << 20);
    c.spec26_quad_repeats = rng.gen_range(0u64..1 << 20);
    c.branch_disps = rng.gen_range(0u64..1 << 30);
    for _ in 0..rng.gen_range(1usize..20) {
        let i = rng.gen_range(0usize..c.opcode_counts.len());
        c.opcode_counts[i] = rng.gen_range(0u64..1 << 30);
    }
    for i in 0..c.branch_executed.len() {
        c.branch_executed[i] = rng.gen_range(0u64..1 << 30);
        c.branch_taken[i] = rng.gen_range(0u64..=c.branch_executed[i]);
    }
    c
}

fn rand_mem(rng: &mut StdRng) -> MemStats {
    MemStats {
        d_reads: rng.gen_range(0u64..1 << 40),
        d_read_misses: rng.gen_range(0u64..1 << 30),
        d_writes: rng.gen_range(0u64..1 << 40),
        d_write_hits: rng.gen_range(0u64..1 << 30),
        i_reads: rng.gen_range(0u64..1 << 40),
        i_read_misses: rng.gen_range(0u64..1 << 30),
        tb_miss_d: rng.gen_range(0u64..1 << 25),
        tb_miss_i: rng.gen_range(0u64..1 << 25),
        unaligned_refs: rng.gen_range(0u64..1 << 25),
        pte_reads: rng.gen_range(0u64..1 << 25),
        pte_read_misses: rng.gen_range(0u64..1 << 20),
        read_stall_cycles: rng.gen_range(0u64..1 << 40),
        write_stall_cycles: rng.gen_range(0u64..1 << 40),
        parity_faults: rng.gen_range(0u64..1 << 20),
    }
}

fn rand_meas(rng: &mut StdRng) -> Measurement {
    Measurement {
        hist: rand_hist(rng),
        cpu_stats: rand_cpu(rng),
        mem_stats: rand_mem(rng),
        cycles: rng.gen_range(0u64..1 << 45),
    }
}

/// Fisher–Yates with the workspace RNG (no external shuffle helper).
fn shuffled<T: Clone>(rng: &mut StdRng, items: &[T]) -> Vec<T> {
    let mut v: Vec<T> = items.to_vec();
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0usize..=i);
        v.swap(i, j);
    }
    v
}

fn check_laws<T, F>(seed: u64, cases: usize, mut gen: F)
where
    T: Mergeable + Clone + PartialEq + std::fmt::Debug,
    F: FnMut(&mut StdRng) -> T,
{
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..cases {
        let a = gen(&mut rng);
        let b = gen(&mut rng);
        let c = gen(&mut rng);

        // Identity, both sides.
        let mut left = T::default();
        left.merge_from(&a);
        assert_eq!(left, a, "case {case}: default ⊕ a ≠ a");
        let mut right = a.clone();
        right.merge_from(&T::default());
        assert_eq!(right, a, "case {case}: a ⊕ default ≠ a");

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut ab = a.clone();
        ab.merge_from(&b);
        ab.merge_from(&c);
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut a_bc = a.clone();
        a_bc.merge_from(&bc);
        assert_eq!(ab, a_bc, "case {case}: associativity violated");

        // Commutativity, as the engine relies on it: a shuffled
        // (completion-order) reduction equals the index-order reduction.
        let parts = vec![a, b, c];
        let in_order: T = merge_ordered(&parts);
        let scrambled: T = merge_ordered(shuffled(&mut rng, &parts));
        assert_eq!(in_order, scrambled, "case {case}: order changed the sum");
    }
}

#[test]
fn histogram_merge_laws() {
    check_laws(0x780_0001, 8, rand_hist);
}

#[test]
fn cpu_stats_merge_laws() {
    check_laws(0x780_0002, 50, rand_cpu);
}

#[test]
fn mem_stats_merge_laws() {
    check_laws(0x780_0003, 50, rand_mem);
}

#[test]
fn measurement_merge_laws() {
    check_laws(0x780_0004, 8, rand_meas);
}
