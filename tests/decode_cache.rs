//! Decode-cache correctness: self-modifying code invalidation and exact
//! equivalence between cached and uncached runs.
//!
//! The decode cache is a host-side accelerator — these tests pin down the
//! two ways it could go wrong: serving a stale decode after the underlying
//! code bytes change (self-modifying code), and perturbing any simulated
//! quantity at all (the cache-off configuration is the oracle).

use vax780::{ProcessSpec, SystemBuilder, SystemConfig};
use vax_asm::parse;
use vax_workload::{build_system, Workload};

/// A process whose loop body overwrites one of its own instructions.
///
/// Layout (origin 0x200): three 2/3-byte setup instructions put the patch
/// target at 0x207. The first loop pass executes `INCL R5` at 0x207 (and
/// caches its decode); the `MOVW` then stores 0x56D6 — the encoding of
/// `INCL R6` — over those same bytes, so the second pass must execute the
/// *new* instruction. With a stale decode the run ends R5=2/R6=0 instead.
const SMC_PROGRAM: &str = r#"
    entry:  CLRL R5
            CLRL R6
            MOVL #2, R4
    loop:   INCL R5
            MOVW #0x56D6, @#0x207
            SOBGTR R4, loop
    spin:   BRB spin
"#;

const SMC_TARGET: u32 = 0x207;

fn smc_system(decode_cache: bool) -> vax780::System {
    let image = parse(SMC_PROGRAM, 0x200).expect("assembly failed");
    // The test hardcodes the patch-target offset; pin it against assembler
    // encoding drift before running anything.
    let off = (SMC_TARGET - 0x200) as usize;
    assert_eq!(
        &image.bytes[off..off + 2],
        &[0xD6, 0x55],
        "expected INCL R5 at {SMC_TARGET:#x}; did instruction encodings shift?"
    );
    let mut b = SystemBuilder::new(SystemConfig::default());
    b.add_process(ProcessSpec::new(image, "entry").with_bss_pages(8));
    let mut sys = b.build();
    sys.cpu.config.decode_cache = decode_cache;
    sys
}

#[test]
fn self_modifying_store_executes_new_instruction() {
    let mut sys = smc_system(true);
    sys.run_instructions(50);
    assert_eq!(sys.cpu.regs[5], 1, "pass 1 must run the original INCL R5");
    assert_eq!(sys.cpu.regs[6], 1, "pass 2 must run the patched INCL R6");
    // The guest store really went through the invalidation path.
    assert!(
        sys.cpu.decode_cache_stats().flushes >= 1,
        "patching live code must flush the decode cache"
    );
}

#[test]
fn self_modifying_code_matches_uncached_oracle() {
    let run = |decode_cache: bool| {
        let mut sys = smc_system(decode_cache);
        sys.run_instructions(50);
        (sys.cpu.regs, sys.cpu.cycle, sys.cpu.stats.clone())
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn instruction_straddling_page_boundary_decodes() {
    // 255 two-byte INCLs fill 0x200..0x3FE; the 7-byte MOVL then starts at
    // 0x3FE and straddles the 512-byte page boundary at 0x400, so its fetch
    // spans two (possibly non-adjacent) physical frames. Exercises the
    // page-by-page refill in `peek_code` / `watch_code_range`.
    let mut src = String::from("entry:  INCL R5\n");
    for _ in 0..254 {
        src.push_str("        INCL R5\n");
    }
    src.push_str("        MOVL #0x12345678, R7\n");
    src.push_str("spin:   BRB spin\n");

    let image = parse(&src, 0x200).expect("assembly failed");
    let movl_off = 0x3FE - 0x200;
    assert_eq!(
        image.bytes[movl_off], 0xD0,
        "MOVL must start 2 bytes before the page boundary"
    );

    for decode_cache in [true, false] {
        let mut b = SystemBuilder::new(SystemConfig::default());
        b.add_process(ProcessSpec::new(image.clone(), "entry").with_bss_pages(8));
        let mut sys = b.build();
        sys.cpu.config.decode_cache = decode_cache;
        sys.run_instructions(300);
        assert_eq!(sys.cpu.regs[5], 255);
        assert_eq!(
            sys.cpu.regs[7], 0x12345678,
            "page-straddling MOVL mis-decoded (decode_cache={decode_cache})"
        );
    }
}

#[test]
fn cached_and_uncached_measurements_are_identical() {
    // Full multi-process runs (context switches, TB misses, interrupts):
    // every simulated quantity in the Measurement must be bit-identical
    // with the cache on and off.
    for (w, seed) in [
        (Workload::TimesharingResearch, 11),
        (Workload::Educational, 5),
    ] {
        let measure = |decode_cache: bool| {
            let mut sys = build_system(w, 3, seed);
            sys.cpu.config.decode_cache = decode_cache;
            sys.measure(2_000, 40_000)
        };
        let cached = measure(true);
        let uncached = measure(false);
        assert_eq!(cached, uncached, "{w:?}: decode cache changed behavior");
    }
}
