//! End-to-end telemetry tests: trace events against the counters they
//! shadow, interval-sample conservation, flight-recorder behavior, JSON
//! round trips, and the counter-validation pass on a real workload.

use vax780::{ProcessSpec, SystemBuilder, SystemConfig};
use vax_analysis::{validate, Analysis, Json};
use vax_arch::{Opcode, Reg};
use vax_asm::{Asm, Operand};
use vax_mem::RecordingSink;

/// A small compute loop touching registers and memory.
fn loop_system() -> vax780::System {
    let mut asm = Asm::new(0x200);
    asm.label("entry");
    asm.insn(
        Opcode::Movl,
        &[Operand::Imm(1_000_000), Operand::Reg(Reg::new(2))],
        None,
    );
    asm.label("loop");
    asm.insn(
        Opcode::Addl3,
        &[
            Operand::Lit(1),
            Operand::Reg(Reg::new(3)),
            Operand::Disp(16, Reg::new(6)),
        ],
        None,
    );
    asm.insn(Opcode::Sobgtr, &[Operand::Reg(Reg::new(2))], Some("loop"));
    asm.insn(Opcode::Brb, &[], Some("loop"));
    let mut b = SystemBuilder::new(SystemConfig::default());
    b.add_process(ProcessSpec::new(asm.assemble().unwrap(), "entry"));
    b.build()
}

#[test]
fn interval_samples_conserve_the_whole_run() {
    let mut sys = loop_system();
    let (total, series) = sys.measure_sampled(1_000, 30_000, 5_000);
    assert!(series.len() >= 2, "run should span several intervals");
    // Intervals are contiguous and cover [0, total.cycles].
    assert_eq!(series.samples[0].start_cycle, 0);
    for w in series.samples.windows(2) {
        assert_eq!(w[0].end_cycle, w[1].start_cycle);
    }
    assert_eq!(series.samples.last().unwrap().end_cycle, total.cycles);
    // Merging every delta reproduces the whole-run measurement exactly —
    // histogram buckets, CPU counters, and memory counters.
    let merged = series.merged();
    assert_eq!(merged.cycles, total.cycles);
    assert_eq!(merged.mem_stats, total.mem_stats);
    assert_eq!(merged.instructions(), total.instructions());
    assert_eq!(
        merged.cpu_stats.spec1_count + merged.cpu_stats.spec26_count,
        total.cpu_stats.spec1_count + total.cpu_stats.spec26_count
    );
    assert_eq!(merged.hist.total_cycles(), total.hist.total_cycles());
    for (upc, plane, count) in total.hist.nonzero() {
        assert_eq!(merged.hist.read(upc, plane), count, "bucket {upc:?}");
    }
}

#[test]
fn trace_events_match_independent_counters() {
    let mut sys = loop_system();
    let sink = RecordingSink::shared();
    sys.cpu.mem.trace.attach(sink.clone());
    sys.run_instructions(2_000);
    sys.cpu.mem.trace.detach();

    let events = sink.borrow();
    let stats = &sys.cpu.stats;
    let mem = &sys.cpu.mem.stats;
    assert_eq!(events.count("retire"), stats.instructions);
    assert_eq!(events.count("interrupt"), stats.total_interrupts());
    assert_eq!(events.count("context-switch"), stats.context_switches);
    assert_eq!(events.count("tb-miss"), mem.total_tb_misses());
    assert_eq!(events.count("cache-miss"), mem.total_read_misses());
    // Every stall window opens and closes.
    assert_eq!(events.count("stall-begin"), events.count("stall-end"));
}

#[test]
fn flight_recorder_caps_and_survives_bpt_dump() {
    // A program that runs a few instructions, then hits BPT (which dumps
    // the flight recorder to stderr), then keeps running.
    let mut asm = Asm::new(0x200);
    asm.label("entry");
    asm.insn(
        Opcode::Movl,
        &[Operand::Imm(5), Operand::Reg(Reg::new(2))],
        None,
    );
    asm.insn(Opcode::Bpt, &[], None);
    asm.label("loop");
    asm.insn(Opcode::Sobgtr, &[Operand::Reg(Reg::new(2))], Some("loop"));
    asm.insn(Opcode::Brb, &[], Some("loop"));
    let mut b = SystemBuilder::new(SystemConfig::default());
    b.add_process(ProcessSpec::new(asm.assemble().unwrap(), "entry"));
    let mut sys = b.build();

    const K: usize = 8;
    sys.cpu.flight = vax_cpu::SharedFlightRecorder::with_capacity(K);
    sys.run_instructions(500);

    assert_eq!(sys.cpu.stats.exceptions, 1, "BPT raised one exception");
    assert_eq!(sys.cpu.flight.len(), K, "ring stays capped at K");
    let report = sys.cpu.flight.report();
    assert_eq!(report.lines().count(), K + 1, "header + one line per entry");
    // The ring holds the most recent instructions: the loop body, not the
    // long-gone MOVL prologue.
    assert!(
        report.contains("SOBGTR") || report.contains("BRB"),
        "{report}"
    );
    assert!(!report.contains("MOVL"), "{report}");
    // Entries are in cycle order.
    let cycles: Vec<u64> = sys.cpu.flight.snapshot().iter().map(|e| e.cycle).collect();
    assert!(cycles.windows(2).all(|w| w[0] < w[1]), "{cycles:?}");
    // The same ring, registered with the panic hook, is dumped on panics.
    sys.cpu.flight.register_panic_dump();
    let _ = std::panic::catch_unwind(|| panic!("injected test panic"));
    let dumped = vax_cpu::flight::take_last_panic_report().expect("hook dumps the ring");
    assert!(dumped.contains("flight recorder"), "{dumped}");
}

#[test]
fn disabled_flight_recorder_stays_empty() {
    let mut sys = loop_system();
    sys.run_instructions(200);
    assert!(!sys.cpu.flight.is_enabled());
    assert!(sys.cpu.flight.is_empty());
}

#[test]
fn validation_is_clean_on_a_real_workload() {
    let mut sys = vax_workload::build_system(
        vax_workload::Workload::ALL[0],
        vax_workload::rte::PROCESSES_PER_WORKLOAD,
        1984,
    );
    let m = sys.measure(2_000, 20_000);
    let report = validate(&sys.cpu.cs, &m);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn exported_measurement_roundtrips_and_matches_tables() {
    let mut sys = loop_system();
    let (m, ts) = sys.measure_sampled(1_000, 10_000, 4_000);
    let a = Analysis::new(&sys.cpu.cs, &m);

    let mj = vax_analysis::measurement_json(&m);
    let parsed = Json::parse(&mj.to_string_pretty()).unwrap();
    assert_eq!(parsed, mj, "serialize → parse is the identity");
    assert_eq!(
        parsed.get("cycles").and_then(Json::as_i64).unwrap() as u64,
        m.cycles
    );
    let ms = parsed.get("mem_stats").unwrap();
    assert_eq!(
        ms.get("read_stall_cycles").and_then(Json::as_i64).unwrap() as u64,
        m.mem_stats.read_stall_cycles
    );

    let tj = vax_analysis::tables_json(&a);
    let cpi = tj
        .get("cpi")
        .and_then(|v| v.get("measured"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!((cpi - a.cpi()).abs() < 1e-12);

    let sj = vax_analysis::timeseries_json(&ts);
    let n = sj.get("intervals").and_then(Json::as_i64).unwrap();
    assert_eq!(n as usize, ts.len());
    let csv = ts.to_csv();
    assert_eq!(csv.lines().count(), ts.len() + 1, "header + one row each");
}
