//! The sharded engine's headline guarantee, end to end: a parallel run
//! (`--jobs 4`) exports byte-identical artifacts to a serial run
//! (`--jobs 1`) of the same grid, because results are reduced in
//! `(workload, shard)` index order regardless of completion order.

use vax_analysis::RunManifest;
use vax_bench::cli::Options;
use vax_bench::progress::{Progress, Verbosity};
use vax_bench::runner::{self, RunOutput};

fn run_with_jobs(jobs: usize, shards: u64) -> (RunOutput, Vec<(&'static str, String)>) {
    let opts = Options {
        instructions: 1_500,
        seed: 42,
        interval_cycles: 5_000,
        jobs,
        shards,
        ..Options::default()
    };
    let out = runner::run_composite(&opts, &Progress::new(Verbosity::Quiet));
    let manifest = RunManifest {
        experiment: opts.experiment.clone(),
        seed: Some(opts.seed),
        instructions: opts.instructions,
        warmup: opts.instructions / 10,
        interval_cycles: opts.interval_cycles,
        shards: opts.shards,
        config: "default VAX-11/780 configuration, 5-workload composite".to_string(),
        fault_seed: opts.fault_seed,
        fault_classes: opts
            .fault_classes
            .iter()
            .map(|c| c.name().to_string())
            .collect(),
        degraded: out.degraded,
        failed_cells: out
            .failed_cells
            .iter()
            .map(|(w, s)| (w.name().to_string(), *s))
            .collect(),
    };
    let files = vax_analysis::run_artifacts(&manifest, &out.analysis, &out.series, &out.validation);
    (out, files)
}

#[test]
fn parallel_run_is_byte_identical_to_serial() {
    let (serial, serial_files) = run_with_jobs(1, 2);
    let (parallel, parallel_files) = run_with_jobs(4, 2);

    assert_eq!(serial.per_workload, parallel.per_workload);
    assert_eq!(serial.analysis.m, parallel.analysis.m);
    assert_eq!(serial.series.to_csv(), parallel.series.to_csv());

    assert_eq!(serial_files.len(), parallel_files.len());
    for ((name_s, body_s), (name_p, body_p)) in serial_files.iter().zip(&parallel_files) {
        assert_eq!(name_s, name_p);
        assert_eq!(body_s, body_p, "{name_s} differs between --jobs 1 and 4");
    }
}

#[test]
fn sharded_grid_has_expected_shape() {
    let (out, _) = run_with_jobs(4, 2);
    assert_eq!(out.per_workload.len(), 5, "one CPI per workload");
    assert!(out.conservation_err.is_none());
    assert!(out.validation.is_clean());
    // Two shards of ~1500 instructions each, five workloads: the composite
    // measured roughly 15 000 instructions (interrupt dispatch makes each
    // shard land a few short or long of its budget).
    let n = out.analysis.m.instructions();
    assert!((14_000..16_000).contains(&n), "instructions {n}");
    // The spliced timeline covers every shard's cycles, in order.
    for w in out.series.samples.windows(2) {
        assert!(
            w[0].start_cycle <= w[1].start_cycle,
            "timeline out of order"
        );
    }
    assert_eq!(
        out.series.merged().instructions(),
        n,
        "series conserves the composite's instructions"
    );
}

#[test]
fn shard_seeds_are_decorrelated() {
    use vax_workload::rte::shard_seed;
    let mut seen = std::collections::HashSet::new();
    for w in 0..5u64 {
        for s in 0..8u64 {
            assert!(
                seen.insert(shard_seed(1984, w, s)),
                "collision at ({w},{s})"
            );
        }
    }
    // Shard 0 of workload 0 is not the root seed itself: every cell goes
    // through the SplitMix64 finalizer.
    assert_ne!(shard_seed(1984, 0, 0), 1984);
}
