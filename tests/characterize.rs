//! The per-opcode characterization observatory, end to end.
//!
//! Four properties the ISSUE-level guarantees rest on:
//! 1. every probeable cell of the opcode × addressing-mode grid assembles
//!    into a loop whose probe instructions decode back to exactly the
//!    opcode and mode the grid asked for (encode/decode round trip);
//! 2. the cost table is byte-identical at any `--jobs` count;
//! 3. `refute` catches a seeded cycle-model error, minimizes it, and the
//!    minimized fixture round-trips through its JSON schema;
//! 4. the committed golden cost table under
//!    `tests/fixtures/characterize-golden/` matches a fresh run with the
//!    same parameters (fixture freshness — the CI smoke gate's anchor).

use std::path::{Path, PathBuf};

use vax_arch::{decode, Opcode};
use vax_asm::{probe_grid, probe_loop};
use vax_bench::charrun::{run_characterize, run_refute};
use vax_bench::cli::CharacterizeOptions;
use vax_bench::progress::{Progress, Verbosity};
use vax_trace::Tracer;

fn quiet() -> Progress {
    Progress::new(Verbosity::Quiet)
}

/// A modest but multi-group grid subset: data movement, arithmetic with a
/// separate destination, a write-only clear, a read–modify–write, and a
/// masking op — all with data-independent microcode paths so the probe
/// loops stay strictly periodic.
fn subset_opts() -> CharacterizeOptions {
    CharacterizeOptions {
        opcodes: ["MOVL", "ADDL2", "CLRL", "INCL", "BICL2"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        reps: 4,
        iters: 16,
        verbosity: Verbosity::Quiet,
        ..CharacterizeOptions::default()
    }
}

#[test]
fn every_probeable_grid_cell_round_trips_through_the_decoder() {
    let mut probeable = 0usize;
    for cell in probe_grid() {
        let Ok(target) = cell.target else { continue };
        probeable += 1;
        let reps = 2u32;
        let p = probe_loop(Some(&target), reps).unwrap();
        // Decode the whole loop body instruction by instruction.
        let start = (p.image.addr_of("loop") - p.image.origin) as usize;
        let end = start + p.loop_bytes as usize;
        let mut at = start;
        let mut insns = Vec::new();
        while at < end {
            let insn = decode(&p.image.bytes[at..]).unwrap_or_else(|e| {
                panic!(
                    "{} {:?}: decode failed at +{at}: {e:?}",
                    cell.opcode.mnemonic(),
                    cell.mode
                )
            });
            at += insn.len as usize;
            insns.push(insn);
        }
        assert_eq!(
            at,
            end,
            "{} {:?}: ragged loop body",
            cell.opcode.mnemonic(),
            cell.mode
        );
        // Scaffold (3 MOVL + trailing BRW) around `reps` probe copies.
        assert_eq!(
            insns.len() as u32,
            p.period,
            "{} {:?}",
            cell.opcode.mnemonic(),
            cell.mode
        );
        assert_eq!(insns.last().unwrap().opcode, Opcode::Brw);
        for probe in &insns[3..3 + reps as usize] {
            assert_eq!(probe.opcode, target.opcode);
            assert_eq!(
                probe.specifiers[target.operand].mode,
                target.mode,
                "{} probed operand {} did not decode back to {:?}",
                target.opcode.mnemonic(),
                target.operand,
                target.mode
            );
        }
    }
    // The grid must stay substantial: most of the instruction set is
    // probeable in most modes.
    assert!(probeable > 1000, "only {probeable} probeable cells");
}

#[test]
fn cost_table_is_byte_identical_across_job_counts() {
    let mut serial = subset_opts();
    serial.jobs = 1;
    let mut fanned = subset_opts();
    fanned.jobs = 4;
    let a = run_characterize(&serial, &quiet(), &Tracer::disabled());
    let b = run_characterize(&fanned, &quiet(), &Tracer::disabled());
    assert!(a.failed_cells.is_empty() && b.failed_cells.is_empty());
    assert!(!a.table.records.is_empty());
    assert_eq!(
        vax_analysis::costs_json(&a.table),
        vax_analysis::costs_json(&b.table),
        "costs.json must not depend on --jobs"
    );
}

#[test]
fn refute_catches_and_minimizes_a_seeded_model_error() {
    let dir = std::env::temp_dir().join(format!("vax-char-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Measure the truth, then claim two extra data reads for one cell.
    let mut opts = subset_opts();
    opts.modes = vec!["register".into(), "register_deferred".into()];
    let truth = run_characterize(&opts, &quiet(), &Tracer::disabled());
    assert!(truth.failed_cells.is_empty());
    let mut model = truth.table.clone();
    let victim = model
        .records
        .iter_mut()
        .find(|r| r.opcode == Opcode::Incl)
        .unwrap();
    let mutated_mnemonic = victim.opcode.mnemonic();
    victim.d_reads += 2.0;
    let model_path = dir.join("model.json");
    std::fs::write(&model_path, vax_analysis::costs_json(&model)).unwrap();

    let mut ropts = opts.clone();
    ropts.model = Some(model_path);
    ropts.fixtures = Some(dir.join("refutations"));
    let out = run_refute(&ropts, &quiet(), &Tracer::disabled()).unwrap();
    assert_eq!(out.refuted_cells.len(), 1, "{:?}", out.refuted_cells);
    assert_eq!(out.refuted_cells[0].0, mutated_mnemonic);
    assert!(out.refuted_cells[0].2.iter().any(|c| c == "model:d_reads"));

    // The minimizer shrinks to a single probe copy and the fixture
    // round-trips through its schema.
    let (refutation, fixture_path) = &out.refutations[0];
    assert_eq!(refutation.reps, 1);
    let text = std::fs::read_to_string(fixture_path.as_ref().unwrap()).unwrap();
    let (opcode, mode, reps) = vax_analysis::refute::refutation_from_json(&text).unwrap();
    assert_eq!(opcode, refutation.opcode);
    assert_eq!(mode, refutation.mode);
    assert_eq!(reps, refutation.reps);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn committed_refutation_fixtures_replay_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/refutations");
    let baseline = vax_analysis::run_probe(None, 0, 16, 2000).unwrap();
    let mut replayed = 0usize;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let (opcode, mode, reps) = vax_analysis::refute::refutation_from_json(&text)
            .unwrap_or_else(|e| {
                panic!("{}: {e}", path.display());
            });
        let target = vax_asm::probe_target(opcode, mode).unwrap();
        let probe = vax_analysis::run_probe(Some(&target), reps, 16, 2000).unwrap();
        // Replay against the model-free checks only: the fixture's model
        // divergence was the bug it caught; the invariant and structural
        // checks must stay clean forever.
        let failures = vax_analysis::check_cell(&target, &probe, &baseline, None);
        assert!(
            failures.is_empty(),
            "{}: regression — {:?}",
            path.display(),
            failures
        );
        replayed += 1;
    }
    assert!(replayed >= 1, "no fixtures under {}", dir.display());
}

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/characterize-golden/costs.json")
}

/// The parameters the golden fixture was generated with — keep in sync
/// with the `characterize-smoke` CI job and `docs/CHARACTERIZATION.md`.
fn golden_options() -> CharacterizeOptions {
    CharacterizeOptions {
        opcodes: ["MOVL", "ADDL2", "CLRL"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        reps: 4,
        iters: 16,
        verbosity: Verbosity::Quiet,
        ..CharacterizeOptions::default()
    }
}

#[test]
fn committed_golden_cost_table_is_fresh() {
    let out = run_characterize(&golden_options(), &quiet(), &Tracer::disabled());
    assert!(out.failed_cells.is_empty());
    let fresh = vax_analysis::costs_json(&out.table);
    let committed = std::fs::read_to_string(golden_path()).unwrap();
    assert_eq!(
        fresh, committed,
        "golden cost table is stale — regenerate with \
         `reproduce characterize --opcodes MOVL,ADDL2,CLRL --reps 4 --iters 16 \
         --out tests/fixtures/characterize-golden`"
    );
}
