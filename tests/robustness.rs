//! The robustness tentpole, in-process: deterministic fault injection,
//! supervised retry, and quarantine — all against the real composite
//! engine (`vax_bench::runner`).
//!
//! The guarantees under test:
//! - the same `--fault-seed` produces byte-identical exports, run to run;
//! - every fault class flows through instrumented paths, so the
//!   counter-conservation validator stays clean under any plan;
//! - a shard panic is retried on a fresh system from the same seed, so a
//!   recovered run is byte-identical to an undisturbed one;
//! - exhausted retries quarantine the cell and degrade the run instead of
//!   aborting it.

use vax780::FaultClass;
use vax_analysis::RunManifest;
use vax_bench::cli::Options;
use vax_bench::progress::{Progress, Verbosity};
use vax_bench::runner::{self, RunOutput};
use vax_workload::Workload;

fn small_run() -> Options {
    Options {
        instructions: 3_000,
        seed: 7,
        shards: 2,
        jobs: 2,
        interval_cycles: 5_000,
        ..Options::default()
    }
}

fn artifacts(opts: &Options) -> (RunOutput, Vec<(&'static str, String)>) {
    let out = runner::run_composite(opts, &Progress::new(Verbosity::Quiet));
    let manifest = RunManifest {
        experiment: opts.experiment.clone(),
        seed: Some(opts.seed),
        instructions: opts.instructions,
        warmup: opts.instructions / 10,
        interval_cycles: opts.interval_cycles,
        shards: opts.shards,
        config: "default VAX-11/780 configuration, 5-workload composite".to_string(),
        fault_seed: opts.fault_seed,
        fault_classes: opts
            .fault_classes
            .iter()
            .map(|c| c.name().to_string())
            .collect(),
        degraded: out.degraded,
        failed_cells: out
            .failed_cells
            .iter()
            .map(|(w, s)| (w.name().to_string(), *s))
            .collect(),
    };
    let files = vax_analysis::run_artifacts(&manifest, &out.analysis, &out.series, &out.validation);
    (out, files)
}

#[test]
fn fault_injection_is_deterministic_and_observable() {
    let opts = Options {
        fault_seed: Some(7),
        fault_classes: FaultClass::ALL.to_vec(),
        ..small_run()
    };
    let (a, a_files) = artifacts(&opts);
    let (_, b_files) = artifacts(&opts);

    // Byte-identical exports for the same fault seed.
    assert_eq!(a_files, b_files);
    assert!(a.validation.is_clean(), "{}", a.validation.render());
    assert!(!a.degraded);

    // The plan actually fired: every class leaves a counter trace.
    let m = &a.analysis.m;
    assert!(m.cpu_stats.machine_checks > 0, "parity faults delivered");
    assert!(m.mem_stats.parity_faults > 0);
    let (base, _) = artifacts(&small_run());
    assert!(
        m.cpu_stats.hw_interrupts > base.analysis.m.cpu_stats.hw_interrupts,
        "device bursts add hardware interrupts"
    );
    assert!(
        m.cpu_stats.sw_interrupt_requests > base.analysis.m.cpu_stats.sw_interrupt_requests,
        "software bursts add requests"
    );

    // A different seed is a different schedule.
    let (c, _) = artifacts(&Options {
        fault_seed: Some(8),
        ..opts
    });
    assert_ne!(c.analysis.m, a.analysis.m);
    assert!(c.validation.is_clean(), "{}", c.validation.render());
}

#[test]
fn every_fault_class_alone_keeps_validation_clean() {
    for class in FaultClass::ALL {
        let (out, _) = artifacts(&Options {
            instructions: 2_000,
            fault_seed: Some(1),
            fault_classes: vec![class],
            ..small_run()
        });
        assert!(
            out.validation.is_clean(),
            "class {}: {}",
            class.name(),
            out.validation.render()
        );
        assert!(out.conservation_err.is_none(), "class {}", class.name());
    }
}

#[test]
fn retried_panic_recovers_to_byte_identity() {
    let (_, clean) = artifacts(&small_run());
    let (out, recovered) = artifacts(&Options {
        inject_panic: Some((0, 0, 1)),
        retries: 2,
        ..small_run()
    });
    assert!(!out.degraded);
    assert!(out.failed_cells.is_empty());
    // The retry rebuilt the shard from the same seed: no trace remains.
    assert_eq!(clean, recovered);
}

#[test]
fn exhausted_retries_quarantine_the_cell_and_keep_the_rest() {
    let (base, _) = artifacts(&small_run());
    let (out, files) = artifacts(&Options {
        inject_panic: Some((1, 0, u32::MAX)),
        retries: 1,
        ..small_run()
    });
    assert!(out.degraded);
    assert_eq!(out.failed_cells, vec![(Workload::ALL[1], 0)]);
    // The surviving cells still merged and validated.
    assert!(out.validation.is_clean(), "{}", out.validation.render());
    assert!(out.analysis.m.cpu_stats.instructions < base.analysis.m.cpu_stats.instructions);
    assert!(out.analysis.m.cpu_stats.instructions > 0);
    // The damage is recorded in the manifest.
    let manifest = &files.iter().find(|(n, _)| *n == "manifest.json").unwrap().1;
    assert!(manifest.contains("\"degraded\": true"), "{manifest}");
    assert!(
        manifest.contains(&format!("\"workload\": \"{}\"", Workload::ALL[1].name())),
        "{manifest}"
    );
}

#[test]
fn watchdog_timeout_quarantines_stuck_shards() {
    let (out, _) = artifacts(&Options {
        instructions: 400_000,
        shards: 1,
        shard_timeout_secs: Some(0.001),
        ..small_run()
    });
    // Every cell blows its (absurdly small) budget.
    assert!(out.degraded);
    assert_eq!(out.failed_cells.len(), Workload::ALL.len());
}
